"""Content-addressed, on-disk segment store for oracle/interval results.

The generation pipeline recomputes expensive, *canonical* values over and
over across runs: the correctly rounded target bits of ``f(x)`` (a Ziv
escalation through mpmath per input) and the reduced-interval corner
walk of Algorithm 2 (hundreds of output-compensation probes per input).
Both are pure functions of ``(function, input bits, target format)`` —
the correctly rounded result is mathematically unique, independent of
working precision or probing strategy — so a run can safely reuse any
previously certified record.  That is exactly what this store holds.

Layout
------

One directory per *bucket* ``<kind>__<fn>__<fmt>`` under the store root
(e.g. ``oracle__log2__float32``, ``walk__log2__float32``).  A bucket is
a set of append-only binary *segment* files::

    seg-<pid>-<store>-<n>.bin
        MAGIC line            b"RPROSEG1\\n"
        meta line             JSON: kind/fn/fmt/version/vals
        fixed-width records   key u64, vals x u64, crc32 u32 (le)

Records are content-addressed: the key is the 64-bit pattern of the
input double, the values are unsigned 64-bit payloads (target bits for
``oracle`` buckets; walk steps for ``walk`` buckets).  ``version`` is
the producer's logical code version — a bumped producer simply stops
reading old segments (*stale*), and ``gc`` deletes and compacts them.

Concurrency
-----------

Writers never touch a shared file: each process appends to its own
private segment (the name embeds the pid and a per-store sequence
number) and publishes it with a write-to-temp + :func:`os.replace`
rename, mirroring the atomic checkpoint shards of
:mod:`repro.parallel.checkpoint`.  Readers therefore only ever see
complete, fully written segments, and the fork pool of
:mod:`repro.parallel.executor` composes naturally: every worker flushes
its shard-local segments at task end and the parent merges them by
re-scanning the bucket directories (:meth:`SegmentStore.refresh`).

A corrupted segment (bad magic, malformed meta, torn/bit-flipped
record) is detected by the per-record CRC and never poisons the cache:
reading stops at the first bad byte and ``verify`` / ``gc`` report and
remove the damage.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import metrics

__all__ = ["BucketSpec", "SegmentStore", "MAGIC"]

MAGIC = b"RPROSEG1\n"

_C_HIT = metrics.counter("cache.hit")
_C_MISS = metrics.counter("cache.miss")
_C_PUT = metrics.counter("cache.put")
_C_SEGS_WRITTEN = metrics.counter("cache.segments_written")
_C_SEGS_LOADED = metrics.counter("cache.segments_loaded")
_C_SEGS_STALE = metrics.counter("cache.segments_stale")
_C_RECORDS_BAD = metrics.counter("cache.records_corrupt")
_C_EVICTIONS = metrics.counter("cache.bucket_evictions")
_C_REFRESHES = metrics.counter("cache.refreshes")

_U64_MAX = (1 << 64) - 1


@dataclass(frozen=True)
class BucketSpec:
    """Identity of one cache bucket (= one directory of segments)."""

    #: Producer kind: ``"oracle"`` (target bits) or ``"walk"`` (corner walk).
    kind: str
    #: Function (oracle) or range-reduction (walk) name.
    fn: str
    #: Target format name (``str(fmt)``), part of the content address.
    fmt: str
    #: Logical code version of the producer; mismatched segments are stale.
    version: int
    #: Number of u64 value words per record.
    vals: int

    @property
    def dirname(self) -> str:
        return f"{self.kind}__{self.fn}__{self.fmt}"

    @property
    def record_struct(self) -> struct.Struct:
        return struct.Struct("<" + "Q" * (1 + self.vals) + "I")


class SegmentStore:
    """On-disk segment store with an in-memory LRU bucket front.

    ``get``/``put`` operate on whole buckets: the first access to a
    bucket loads every valid segment into a plain dict (the LRU front);
    ``put`` records go to a write-behind buffer that is flushed to a new
    private segment every ``flush_every`` records, on :meth:`flush`, and
    at interpreter exit (the caller registers that).  ``max_buckets``
    bounds the LRU front; evicted buckets are flushed first.
    """

    def __init__(self, root: str | os.PathLike, *, flush_every: int = 4096,
                 max_buckets: int = 64):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.flush_every = flush_every
        self.max_buckets = max_buckets
        self._buckets: OrderedDict[BucketSpec, dict[int, tuple[int, ...]]] \
            = OrderedDict()
        self._pending: dict[BucketSpec, dict[int, tuple[int, ...]]] = {}
        self._pending_n = 0
        self._seq = 0
        self._hits = 0
        self._misses = 0
        self._puts = 0
        SegmentStore._instances += 1
        self._store_no = SegmentStore._instances

    #: Per-process instance counter, part of private segment names so two
    #: stores on the same root in one process cannot collide.
    _instances = 0

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, spec: BucketSpec, key: int) -> tuple[int, ...] | None:
        """Cached values for ``key``, or None on a miss."""
        got = self._load(spec).get(key)
        if got is None:
            self._misses += 1
            _C_MISS.inc()
            return None
        self._hits += 1
        _C_HIT.inc()
        return got

    def put(self, spec: BucketSpec, key: int, values: tuple[int, ...]) -> None:
        """Record ``key -> values`` (idempotent; known keys are kept)."""
        if len(values) != spec.vals:
            raise ValueError(
                f"{spec.dirname}: expected {spec.vals} values, "
                f"got {len(values)}")
        bucket = self._load(spec)
        if key in bucket:
            return
        bucket[key] = values
        self._pending.setdefault(spec, {})[key] = values
        self._pending_n += 1
        self._puts += 1
        _C_PUT.inc()
        if self._pending_n >= self.flush_every:
            self.flush()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Publish every pending record as new private segments."""
        written = 0
        for spec, records in sorted(self._pending.items(),
                                    key=lambda kv: kv[0].dirname):
            if records:
                self._write_segment(spec, records)
                written += 1
        self._pending.clear()
        self._pending_n = 0
        return written

    def refresh(self) -> None:
        """Flush, then drop the LRU front so other processes' freshly
        published segments become visible (the parent-side merge of the
        worker/parent protocol)."""
        self.flush()
        self._buckets.clear()
        _C_REFRESHES.inc()

    def _write_segment(self, spec: BucketSpec,
                       records: dict[int, tuple[int, ...]]) -> None:
        dirp = self.root / spec.dirname
        dirp.mkdir(parents=True, exist_ok=True)
        meta = {"kind": spec.kind, "fn": spec.fn, "fmt": spec.fmt,
                "version": spec.version, "vals": spec.vals}
        parts = [MAGIC, json.dumps(meta, sort_keys=True).encode() + b"\n"]
        for key in sorted(records):
            payload = struct.pack("<" + "Q" * (1 + spec.vals),
                                  key, *records[key])
            parts.append(payload + struct.pack("<I", zlib.crc32(payload)))
        blob = b"".join(parts)
        # private final name: pid + per-store sequence; bump past any
        # survivor of a recycled pid so no published segment is replaced
        while True:
            self._seq += 1
            final = (dirp /
                     f"seg-{os.getpid()}-{self._store_no}-{self._seq}.bin")
            if not final.exists():
                break
        tmp = dirp / f".tmp-{final.name}"
        tmp.write_bytes(blob)
        os.replace(tmp, final)
        _C_SEGS_WRITTEN.inc()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self, spec: BucketSpec) -> dict[int, tuple[int, ...]]:
        bucket = self._buckets.get(spec)
        if bucket is not None:
            self._buckets.move_to_end(spec)
            return bucket
        bucket = {}
        dirp = self.root / spec.dirname
        if dirp.is_dir():
            for path in sorted(dirp.glob("seg-*.bin")):
                self._read_segment(path, spec, bucket)
        # puts that were pending when this bucket was last evicted
        bucket.update(self._pending.get(spec, {}))
        self._buckets[spec] = bucket
        while len(self._buckets) > self.max_buckets:
            old_spec, _old = self._buckets.popitem(last=False)
            pending = self._pending.pop(old_spec, None)
            if pending:
                self._pending_n -= len(pending)
                self._write_segment(old_spec, pending)
            _C_EVICTIONS.inc()
        return bucket

    def _read_segment(self, path: pathlib.Path, spec: BucketSpec,
                      out: dict[int, tuple[int, ...]]) -> None:
        try:
            blob = path.read_bytes()
        except OSError:
            _C_RECORDS_BAD.inc()
            return
        body, meta = _parse_header(blob)
        if meta is None:
            _C_RECORDS_BAD.inc()
            return
        if meta.get("version") != spec.version or meta.get("vals") != spec.vals:
            _C_SEGS_STALE.inc()
            return
        rec = spec.record_struct
        payload_len = rec.size - 4
        for off in range(0, len(body) - rec.size + 1, rec.size):
            chunk = body[off:off + rec.size]
            fields = rec.unpack(chunk)
            if zlib.crc32(chunk[:payload_len]) != fields[-1]:
                _C_RECORDS_BAD.inc()
                return  # append-only file: damage truncates the suffix
            out[fields[0]] = fields[1:-1]
        if len(body) % rec.size:
            _C_RECORDS_BAD.inc()  # torn trailing record
        _C_SEGS_LOADED.inc()

    # ------------------------------------------------------------------
    # Maintenance (stats / verify / gc)
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, float]:
        """This store object's lookup/insert activity and hit rate.

        Instance-level on purpose (the ``cache.*`` metrics counters
        aggregate *process*-wide): the hit-rate panels in
        ``python -m repro report`` and the parallel benchmark need the
        per-store view, and the serial-vs-parallel counter-equality
        contract must not depend on which store absorbed the traffic.
        """
        lookups = self._hits + self._misses
        return {"hits": self._hits, "misses": self._misses,
                "puts": self._puts,
                "hit_rate": self._hits / lookups if lookups else 0.0}

    def buckets_on_disk(self) -> list[str]:
        """Sorted bucket directory names currently present on disk."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and p.name.count("__") == 2)

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-bucket segment/record/byte totals (reads every header)."""
        out: dict[str, dict[str, int]] = {}
        for name in self.buckets_on_disk():
            dirp = self.root / name
            segs = records = size = stale = 0
            versions: set[int] = set()
            for path in sorted(dirp.glob("seg-*.bin")):
                blob = path.read_bytes()
                size += len(blob)
                segs += 1
                body, meta = _parse_header(blob)
                if meta is None:
                    stale += 1
                    continue
                versions.add(int(meta.get("version", -1)))
                vals = int(meta.get("vals", 1))
                records += len(body) // (8 * (1 + vals) + 4)
            out[name] = {"segments": segs, "records": records,
                         "bytes": size, "unreadable": stale,
                         "versions": len(versions)}
        return out

    def verify(self) -> list[str]:
        """Structural check of every segment; returns problem strings."""
        problems: list[str] = []
        for name in self.buckets_on_disk():
            dirp = self.root / name
            for path in sorted(dirp.glob("seg-*.bin")):
                rel = f"{name}/{path.name}"
                blob = path.read_bytes()
                body, meta = _parse_header(blob)
                if meta is None:
                    problems.append(f"{rel}: bad magic or meta header")
                    continue
                try:
                    vals = int(meta["vals"])
                except (KeyError, TypeError, ValueError):
                    problems.append(f"{rel}: meta missing 'vals'")
                    continue
                rec = struct.Struct("<" + "Q" * (1 + vals) + "I")
                if len(body) % rec.size:
                    problems.append(
                        f"{rel}: torn trailing record "
                        f"({len(body) % rec.size} dangling bytes)")
                for off in range(0, len(body) - rec.size + 1, rec.size):
                    chunk = body[off:off + rec.size]
                    if zlib.crc32(chunk[:-4]) != rec.unpack(chunk)[-1]:
                        problems.append(
                            f"{rel}: CRC mismatch in record "
                            f"{off // rec.size}")
                        break
        return problems

    def gc(self, current_versions: dict[str, int]) -> dict[str, int]:
        """Compact every bucket: merge current-version records into one
        segment, drop stale/corrupt segments.

        ``current_versions`` maps a bucket *kind* to the live producer
        version; buckets of unknown kinds keep their newest version seen
        on disk.  Returns removal/compaction counts.
        """
        self.flush()
        removed = kept = compacted = 0
        for name in self.buckets_on_disk():
            dirp = self.root / name
            kind = name.split("__", 1)[0]
            paths = sorted(dirp.glob("seg-*.bin"))
            metas = []
            for path in paths:
                _body, meta = _parse_header(path.read_bytes())
                metas.append(meta)
            versions = [int(m["version"]) for m in metas
                        if m is not None and "version" in m]
            live = current_versions.get(
                kind, max(versions) if versions else 0)
            merged: dict[int, tuple[int, ...]] = {}
            live_spec: BucketSpec | None = None
            for path, meta in zip(paths, metas):
                if meta is None or int(meta.get("version", -1)) != live:
                    continue
                spec = BucketSpec(str(meta["kind"]), str(meta["fn"]),
                                  str(meta["fmt"]), live, int(meta["vals"]))
                self._read_segment(path, spec, merged)
                live_spec = spec
            if merged and live_spec is not None:
                self._write_segment(live_spec, merged)
                kept += len(merged)
                compacted += 1
            for path in paths:
                path.unlink(missing_ok=True)
                removed += 1
        self._buckets.clear()
        return {"segments_removed": removed, "records_kept": kept,
                "buckets_compacted": compacted}


def _parse_header(blob: bytes) -> tuple[bytes, dict | None]:
    """Split a segment blob into (record body, meta dict | None)."""
    if not blob.startswith(MAGIC):
        return b"", None
    nl = blob.find(b"\n", len(MAGIC))
    if nl < 0:
        return b"", None
    try:
        meta = json.loads(blob[len(MAGIC):nl].decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return b"", None
    if not isinstance(meta, dict):
        return b"", None
    return blob[nl + 1:], meta
