"""Persistent generation cache: on-disk oracle and interval store.

The store (:mod:`repro.cache.store`) is content-addressed — keyed by
function name, input bits, target format name, and producer code
version — so generation, validation, and audits can share one warm
cache across runs and across worker processes.  It is wired *under*
``Oracle.round_to_bits``/``round_to_double`` and the corner walk of
:func:`repro.core.reduced.reduced_intervals`: both only ever cache
canonical values (the correctly rounded result, the proven walk
extents), so enabling the cache cannot change a single generated bit.

Activation
----------

Off by default.  Either construct an :class:`Oracle` with an explicit
``store=``, or set a process-wide store::

    from repro import cache
    cache.configure("/path/to/cache")       # explicit

    REPRO_CACHE_DIR=/path/to/cache ...      # via the environment

The process-wide store is what the ``python -m repro cache`` CLI and
the fork pool use: :func:`flush_active` runs in every worker at task
end (publishing shard-local segments) and :func:`refresh_active` in the
parent afterwards (merging them), mirroring the checkpoint manifest
pattern of :mod:`repro.parallel`.
"""

from __future__ import annotations

import atexit
import os

from repro.cache.store import BucketSpec, SegmentStore

__all__ = ["BucketSpec", "SegmentStore", "configure", "deactivate",
           "active_store", "flush_active", "refresh_active", "ENV_VAR"]

#: Environment variable naming the store root directory.
ENV_VAR = "REPRO_CACHE_DIR"

_active: SegmentStore | None = None
_env_checked = False
_atexit_registered = False


def configure(root: str | os.PathLike, **kwargs) -> SegmentStore:
    """Install (and return) the process-wide store rooted at ``root``."""
    global _active, _env_checked, _atexit_registered
    flush_active()
    _active = SegmentStore(root, **kwargs)
    _env_checked = True
    if not _atexit_registered:
        atexit.register(flush_active)
        _atexit_registered = True
    return _active


def deactivate() -> None:
    """Flush and drop the process-wide store (environment re-checked on
    the next :func:`active_store` call only after a new configure)."""
    global _active
    flush_active()
    _active = None


def active_store() -> SegmentStore | None:
    """The process-wide store, auto-configured from ``REPRO_CACHE_DIR``
    on first use; None when no cache is enabled."""
    global _env_checked
    if _active is None and not _env_checked:
        _env_checked = True
        root = os.environ.get(ENV_VAR)
        if root:
            return configure(root)
    return _active


def flush_active() -> None:
    """Flush the process-wide store, if any (worker task-end hook)."""
    if _active is not None:
        _active.flush()


def refresh_active() -> None:
    """Re-scan the process-wide store, if any (parent post-pool hook)."""
    if _active is not None:
        _active.refresh()
