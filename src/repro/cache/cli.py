"""``python -m repro cache {stats,warm,gc,verify}``.

Maintenance commands for the persistent generation cache
(:mod:`repro.cache.store`).  The store root comes from ``--dir`` or the
``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import argparse
import os
import random
import sys


def _resolve_root(args: argparse.Namespace) -> str | None:
    from repro.cache import ENV_VAR

    return args.dir or os.environ.get(ENV_VAR)


def _open_store(args: argparse.Namespace):
    from repro.cache import SegmentStore

    root = _resolve_root(args)
    if not root:
        print("cache: no store directory (use --dir or set "
              "REPRO_CACHE_DIR)", file=sys.stderr)
        return None
    return SegmentStore(root)


def _cmd_stats(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    rows = store.stats()
    if not rows:
        print(f"cache at {store.root}: empty")
        return 0
    wid = max(len(n) for n in rows)
    print(f"cache at {store.root}")
    print(f"{'bucket':<{wid}}  {'segs':>5} {'records':>9} {'bytes':>10} "
          f"{'bad':>4} {'vers':>4}")
    tot_r = tot_b = 0
    for name, st in rows.items():
        tot_r += st["records"]
        tot_b += st["bytes"]
        print(f"{name:<{wid}}  {st['segments']:>5} {st['records']:>9} "
              f"{st['bytes']:>10} {st['unreadable']:>4} {st['versions']:>4}")
    print(f"{'total':<{wid}}  {'':>5} {tot_r:>9} {tot_b:>10}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    problems = store.verify()
    if not problems:
        print(f"cache at {store.root}: all segments verify clean")
        return 0
    for p in problems:
        print(f"PROBLEM {p}")
    print(f"{len(problems)} problem(s) found")
    return 1


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.core.reduced import WALK_VERSION
    from repro.oracle.mpmath_oracle import ORACLE_VERSION

    store = _open_store(args)
    if store is None:
        return 2
    res = store.gc({"oracle": ORACLE_VERSION, "walk": WALK_VERSION})
    print(f"cache at {store.root}: removed {res['segments_removed']} "
          f"segment(s), compacted {res['buckets_compacted']} bucket(s), "
          f"kept {res['records_kept']} record(s)")
    return 0


def _cmd_warm(args: argparse.Namespace) -> int:
    """Pre-populate oracle and walk buckets for a function/target."""
    from repro import cache
    from repro.core.intervals import target_is_special, \
        target_rounding_interval
    from repro.core.reduced import reduced_intervals
    from repro.core.sampling import sample_values
    from repro.libm.serialize import TARGETS_BY_NAME
    from repro.oracle.mpmath_oracle import Oracle
    from repro.rangereduction import reduction_for

    root = _resolve_root(args)
    if not root:
        print("cache: no store directory (use --dir or set "
              "REPRO_CACHE_DIR)", file=sys.stderr)
        return 2
    if args.target not in TARGETS_BY_NAME:
        print(f"cache warm: unknown target {args.target!r}",
              file=sys.stderr)
        return 2
    fmt = TARGETS_BY_NAME[args.target]
    store = cache.configure(root)
    oracle = Oracle(store=store)
    rr = reduction_for(args.function, fmt)
    xs = sample_values(fmt, args.n, random.Random(args.seed))
    pairs = []
    for x in xs:
        if rr.special(x) is not None:
            continue
        bits = fmt.from_double(x)
        if target_is_special(fmt, bits):
            continue
        y_bits = oracle.round_to_bits(args.function, x, fmt)
        pairs.append((x, target_rounding_interval(fmt, y_bits)))
    reduced_intervals(pairs, rr, oracle, store=store, fmt_name=str(fmt))
    store.flush()
    print(f"cache at {store.root}: warmed {args.function}/{args.target} "
          f"with {len(pairs)} input(s) (seed {args.seed})")
    return 0


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dir", metavar="DIR",
                        help="store root (default: $REPRO_CACHE_DIR)")
    sub = parser.add_subparsers(dest="cache_command", required=True)

    p = sub.add_parser("stats", help="per-bucket segment/record totals")
    p.set_defaults(cache_fn=_cmd_stats)

    p = sub.add_parser("verify",
                       help="structural check of every segment (exit 1 "
                            "on any corruption)")
    p.set_defaults(cache_fn=_cmd_verify)

    p = sub.add_parser("gc", help="compact buckets, drop stale versions")
    p.set_defaults(cache_fn=_cmd_gc)

    p = sub.add_parser("warm", help="pre-populate oracle + walk buckets")
    p.add_argument("--function", default="log2", help="function name")
    p.add_argument("--target", default="float32")
    p.add_argument("--n", type=int, default=4000,
                   help="sampled input count")
    p.add_argument("--seed", type=int, default=3)
    p.set_defaults(cache_fn=_cmd_warm)


def run(args: argparse.Namespace) -> int:
    return args.cache_fn(args)
