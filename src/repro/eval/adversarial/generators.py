"""Hostile-input candidate generators, per (function, format).

Each generator returns *target-representable* doubles aimed at one
family of historically wrong-making inputs (PyMPF's test generators and
the RLIBM papers' wrong-result tables both draw from these):

* :func:`boundary_ordinal_candidates` — ordinal neighbourhoods of the
  structural points of the function's domain (domain endpoints, the
  table-driven cluster centres, posit regime transitions);
* :func:`special_frontier_candidates` — the exact frontiers of the
  special-case layer: the last ordinal the polynomial path answers next
  to the first the special layer answers, plus the non-finite patterns
  (NaN/±inf, NaR) and signed zeros themselves;
* :func:`seam_candidates` — range-reduction seams: inputs bracketing
  every change of the shipped tables' sub-domain index field or of the
  reduction's compensation context (table entry switches, ``k``
  threshold crossings), located by ordinal bisection;
* :func:`graze_candidates` — oracle-guided boundary grazers: random
  starts refined by a Newton step in ordinal space toward the nearest
  rounding-interval boundary of their result, plus ±k-ulp
  neighbourhoods of the refined inputs;
* :func:`random_candidates` — plain ordinal-uniform random draws (the
  miner keeps only the hardest).

Generators may return duplicates and inputs the special layer answers;
the miner de-duplicates and tags provenance.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

from repro.core.intervals import TargetFormat, target_rounding_interval
from repro.core.sampling import (boundary_values, ordinal_limit,
                                 sample_values, value_to_ordinal)
from repro.fp.formats import FloatFormat
from repro.oracle.functions import get_function
from repro.oracle.mpmath_oracle import Oracle, default_oracle
from repro.posit.format import PositFormat
from repro.rangereduction.base import RangeReduction
from repro.rangereduction.domains import boundary_centers, sampling_domain

__all__ = ["boundary_ordinal_candidates", "special_frontier_candidates",
           "seam_candidates", "graze_candidates", "random_candidates",
           "input_value"]

#: Oracle bracket precision for the graze refinement step (the miner's
#: final ranking re-measures with the escalating boundary_distance).
_GRAZE_PREC = 192


def input_value(fmt: TargetFormat, bits: int) -> float:
    """Decode a corpus input pattern to the double the runtime receives.

    The one pattern :meth:`~repro.fp.formats.FloatFormat.to_double`
    cannot round-trip is the IEEE negative zero (it decodes to ``+0.0``
    by contract); corpora carry it because ``sinpi``/``cospi`` results
    depend on the sign of zero.
    """
    if isinstance(fmt, FloatFormat) and bits == fmt.sign_mask:
        return -0.0
    return fmt.to_double(bits)


def boundary_ordinal_candidates(
    fn_name: str,
    fmt: TargetFormat,
    rr: RangeReduction,
    radius: int = 16,
) -> list[float]:
    """Ordinal neighbourhoods of the domain's structural points."""
    lo, hi = sampling_domain(fn_name, fmt, rr)
    out = boundary_values(fmt, boundary_centers(fn_name, rr, lo, hi), radius)
    if isinstance(fmt, PositFormat):
        # regime transitions: tapered precision changes across powers of
        # useed, where repurposed libraries historically go wrong.  The
        # regimes span useed**±(nbits-2); tighter neighbourhoods keep the
        # candidate count proportionate.
        u = float(fmt.useed)
        centers = []
        for k in range(1, fmt.nbits - 1):
            c = u ** k
            if math.isinf(c):
                break
            centers += [x for x in (c, 1.0 / c, -c, -1.0 / c)
                        if lo <= x <= hi]
        out += boundary_values(fmt, centers, min(radius, 3))
    return out


def special_frontier_candidates(
    fn_name: str,
    fmt: TargetFormat,
    rr: RangeReduction,
    radius: int = 8,
) -> list[float]:
    """The special-case layer's frontiers and the special patterns."""
    lo, hi = sampling_domain(fn_name, fmt, rr)
    out = boundary_values(fmt, [lo, hi, 0.0], radius)
    limit = ordinal_limit(fmt)
    # the format's own extremes (maxpos/minpos for posits, the largest
    # finite and deepest subnormal for IEEE targets)
    for n in (limit, -limit, 1, -1):
        out.append(fmt.to_double(fmt.from_ordinal(n)))
    if isinstance(fmt, FloatFormat):
        out += [0.0, -0.0, math.inf, -math.inf, math.nan]
    else:
        out += [0.0, math.nan]   # posit zero and NaR
    return out


def _signature(rr: RangeReduction, approx: dict, x: float):
    """What changes across a seam: sub-domain indices + reduction ctx."""
    if rr.special(x) is not None:
        return None
    r, ctx = rr.reduce(x)
    sig: list[object] = [repr(ctx)]
    for name in rr.fn_names:
        af = approx[name]
        side = af.neg if r < 0.0 else af.pos
        sig.append((r < 0.0, side.index_of(r) if side is not None else -1))
    return tuple(sig)


def seam_candidates(
    fn_name: str,
    fmt: TargetFormat,
    rr: RangeReduction,
    approx: dict,
    n_base: int = 512,
    radius: int = 2,
    max_seams: int = 64,
) -> list[float]:
    """Inputs bracketing changes of the shipped tables' index fields.

    Walks ``n_base`` ordinal-equidistant probes over the non-special
    domain; whenever two consecutive probes disagree on the sub-domain
    signature (table index per reduced function, or the compensation
    context — i.e. the ``k``/table-entry seams of the range reduction),
    an ordinal bisection pins the *first* flip between them and both
    sides of the seam join the candidate set with a ±``radius``
    neighbourhood.
    """
    lo, hi = sampling_domain(fn_name, fmt, rr)
    olo, ohi = value_to_ordinal(fmt, lo), value_to_ordinal(fmt, hi)
    if ohi - olo < 2:
        return []

    def val(o: int) -> float:
        return fmt.to_double(fmt.from_ordinal(o))

    n_base = min(n_base, ohi - olo + 1)
    seam_ordinals: list[int] = []
    prev_o: int | None = None
    prev_sig = None
    for i in range(n_base):
        o = olo + (ohi - olo) * i // (n_base - 1)
        if o == prev_o:
            continue
        sig = _signature(rr, approx, val(o))
        if prev_o is not None and sig != prev_sig:
            a, b = prev_o, o
            want = prev_sig
            while b - a > 1:
                m = (a + b) // 2
                if _signature(rr, approx, val(m)) == want:
                    a = m
                else:
                    b = m
            seam_ordinals += [a, b]
            if len(seam_ordinals) >= 2 * max_seams:
                break
        prev_o, prev_sig = o, sig
    return boundary_values(fmt, [val(o) for o in seam_ordinals], radius)


def graze_candidates(
    fn_name: str,
    fmt: TargetFormat,
    rr: RangeReduction,
    count: int = 32,
    seed: int = 11,
    oracle: Oracle = default_oracle,
    radius: int = 2,
    steps: int = 2,
) -> list[float]:
    """Oracle-guided boundary grazers with ±k-ulp neighbourhoods."""
    lo, hi = sampling_domain(fn_name, fmt, rr)
    rng = random.Random(seed)
    starts = [x for x in sample_values(fmt, count, rng, lo, hi)
              if rr.special(x) is None]
    olo, ohi = value_to_ordinal(fmt, lo), value_to_ordinal(fmt, hi)
    out: list[float] = []
    for x in starts:
        for _ in range(steps):
            nxt = _graze_step(fn_name, fmt, rr, x, oracle, olo, ohi)
            if nxt is None:
                break
            x = nxt
        out += boundary_values(fmt, [x], radius)
    return out


def _graze_step(fn_name: str, fmt: TargetFormat, rr: RangeReduction,
                x: float, oracle: Oracle, olo: int, ohi: int) -> float | None:
    """One Newton step in ordinal space toward the nearest boundary."""
    fn = get_function(fn_name)
    lo_br, hi_br, exact = oracle.bracket(fn, x, _GRAZE_PREC)
    if exact:
        return None
    q = (lo_br + hi_br) / 2
    iv = target_rounding_interval(fmt, fmt.from_fraction(q))
    if math.isinf(iv.lo) or math.isinf(iv.hi):
        return None
    b_lo, b_hi = Fraction(iv.lo), Fraction(iv.hi)
    target = b_lo if (q - b_lo) <= (b_hi - q) else b_hi
    # local derivative from the two neighbouring representable inputs
    o = value_to_ordinal(fmt, x)
    if not olo < o < ohi:
        return None
    x_dn = fmt.to_double(fmt.from_ordinal(o - 1))
    x_up = fmt.to_double(fmt.from_ordinal(o + 1))
    if rr.special(x_dn) is not None or rr.special(x_up) is not None:
        return None
    f_dn = oracle.round_to_double(fn_name, x_dn)
    f_up = oracle.round_to_double(fn_name, x_up)
    span = x_up - x_dn
    dy = f_up - f_dn
    if not math.isfinite(dy) or dy == 0.0:   # fplint: disable=FP101
        return None
    # ordinals per unit input is locally 2 / span; clamp the jump so a
    # bad linearization cannot leave the neighbourhood that produced it
    k = int(round(float(target - q) / dy * 2.0))
    k = max(-(1 << 16), min(1 << 16, k))
    if k == 0:
        return None
    o2 = max(olo + 1, min(ohi - 1, o + k))
    x2 = fmt.to_double(fmt.from_ordinal(o2))
    if o2 == o or rr.special(x2) is not None:
        return None
    return x2


def random_candidates(
    fn_name: str,
    fmt: TargetFormat,
    rr: RangeReduction,
    count: int = 256,
    seed: int = 7,
) -> list[float]:
    """Plain ordinal-uniform draws over the non-special domain."""
    lo, hi = sampling_domain(fn_name, fmt, rr)
    return sample_values(fmt, count, random.Random(seed), lo, hi)
