"""The corpus factory: generate, de-duplicate, rank, freeze.

:func:`mine_corpus` runs every hostile-input generator for one
(function, target) pair, de-duplicates the candidates by input bit
pattern (first generator wins the provenance tag), measures each
non-special candidate's exact :func:`~repro.eval.hardcases.
boundary_distance`, keeps the hardest per category, and records the
correctly rounded expected result (special-case layer or oracle) for
each survivor.  The result freezes as a committed JSON file the replay
harness (:mod:`~repro.eval.adversarial.audit`) re-checks forever after
without an oracle in the loop.

Mining is deterministic for a given seed; re-mining with the shipped
defaults reproduces the committed corpora byte-for-byte as long as the
tables and the oracle semantics are unchanged.
"""

from __future__ import annotations

from repro.core.generator import GeneratedFunction, target_bits
from repro.eval.adversarial.corpus import Corpus, CorpusEntry, save_corpus
from repro.eval.adversarial.generators import (boundary_ordinal_candidates,
                                               graze_candidates,
                                               random_candidates,
                                               seam_candidates,
                                               special_frontier_candidates)
from repro.eval.hardcases import boundary_distance
from repro.obs import metrics, timed_span
from repro.oracle.mpmath_oracle import Oracle, default_oracle

__all__ = ["mine_corpus", "mine_corpora", "corpus_inputs", "CATEGORY_CAPS"]

#: Per-provenance entry caps (hardest kept); the sum bounds corpus size.
CATEGORY_CAPS = {"special": 32, "seam": 32, "boundary": 24,
                 "graze": 24, "random": 16}


def _candidate_sets(fn_name, fmt, rr, approx, seed, oracle):
    """(tag, candidates) in provenance-priority order."""
    return [
        ("special", special_frontier_candidates(fn_name, fmt, rr)),
        ("seam", seam_candidates(fn_name, fmt, rr, approx)),
        ("boundary", boundary_ordinal_candidates(fn_name, fmt, rr)),
        ("graze", graze_candidates(fn_name, fmt, rr, seed=seed + 1,
                                   oracle=oracle)),
        ("random", random_candidates(fn_name, fmt, rr, seed=seed)),
    ]


def mine_corpus(
    fn_name: str,
    target: str,
    *,
    fn: GeneratedFunction | None = None,
    seed: int = 2021,
    caps: dict[str, int] | None = None,
    oracle: Oracle = default_oracle,
) -> Corpus:
    """Mine the adversarial corpus for one shipped (function, target).

    ``fn`` defaults to the shipped frozen table (its range reduction
    carries the frozen thresholds, so mining never re-derives them);
    pass a freshly generated function for unshipped formats (tests mine
    float8 corpora this way).
    """
    from repro.libm.serialize import TARGETS_BY_NAME

    fmt = TARGETS_BY_NAME[target]
    if fn is None:
        from repro.libm.runtime import load_function

        fn = load_function(fn_name, target)
    rr = fn.spec.rr
    caps = dict(CATEGORY_CAPS, **(caps or {}))

    with timed_span("adversarial.mine", fn=fn_name, target=target):
        tagged: dict[int, str] = {}
        for tag, xs in _candidate_sets(fn_name, fmt, rr, fn.approx,
                                       seed, oracle):
            for x in xs:
                bits = target_bits(fmt, x)
                tagged.setdefault(bits, tag)

        from repro.eval.adversarial.generators import input_value

        scored: dict[str, list[CorpusEntry]] = {t: [] for t in caps}
        for bits, tag in tagged.items():
            x = input_value(fmt, bits)
            s = rr.special(x)
            if s is not None:
                want = target_bits(fmt, s)
                d = 0.5
            else:
                want = oracle.round_to_bits(fn_name, x, fmt)
                d = boundary_distance(fn_name, x, fmt, oracle)
            scored[tag].append(CorpusEntry(bits, want, d, tag))

        entries: list[CorpusEntry] = []
        for tag, cap in caps.items():
            ranked = sorted(scored[tag],
                            key=lambda e: (e.distance, e.x_bits))
            entries += ranked[:cap]
        entries.sort(key=lambda e: (e.distance, e.source, e.x_bits))
        metrics.counter("adversarial.mined").inc(len(entries))
    return Corpus(fn_name, target, entries)


def corpus_inputs(directory, target: str) -> dict[str, list[float]]:
    """Decoded inputs of every committed corpus for one target.

    The feedback loop's reading end: ``tools/generate_*.py
    --adversarial`` folds these into the generation constraint set, so a
    regenerated table can never re-ship a rounding the corpus already
    proved wrong.
    """
    from repro.eval.adversarial.corpus import list_corpora, load_corpus
    from repro.eval.adversarial.generators import input_value
    from repro.libm.serialize import TARGETS_BY_NAME

    fmt = TARGETS_BY_NAME[target]
    out: dict[str, list[float]] = {}
    for fn_name, tgt, path in list_corpora(directory):
        if tgt != target:
            continue
        corpus = load_corpus(path)
        out[fn_name] = [input_value(fmt, e.x_bits) for e in corpus]
    return out


def _mine_task(payload: tuple) -> dict:
    """Worker task: mine one corpus, return its JSON document."""
    fn_name, target, seed = payload
    return mine_corpus(fn_name, target, seed=seed).to_json()


def mine_corpora(
    pairs: list[tuple[str, str]],
    directory,
    *,
    seed: int = 2021,
    workers=None,
) -> list:
    """Mine and freeze corpora for many (function, target) pairs.

    With ``workers`` > 1 the pairs are mined across a process pool (one
    task per corpus); results are identical to serial mining — each
    corpus depends only on its own (function, target, seed).
    Returns the written paths in ``pairs`` order.
    """
    from repro.eval.adversarial.corpus import CorpusEntry
    from repro.parallel import run_tasks

    payloads = [(f, t, seed) for f, t in pairs]
    docs = run_tasks(_mine_task, payloads, workers=workers,
                     label="adversarial.mine")
    paths = []
    for doc in docs:
        corpus = Corpus(doc["function"], doc["target"],
                        [CorpusEntry.from_json(e) for e in doc["entries"]])
        paths.append(save_corpus(corpus, directory))
    return paths
