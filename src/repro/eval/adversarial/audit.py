"""The differential replay harness for frozen adversarial corpora.

Every corpus entry replays through all the evaluation paths the library
ships — the scalar interpreter (``evaluate_bits``), the vectorized
batch engine (``evaluate_bits_many``), the instrumented runtime wrapper
(:func:`repro.libm.runtime.instrument`), and, when ``workers`` > 1, the
process-pool path that rebuilds the function from its serialized form
in each worker — and every path must reproduce the frozen expected bit
pattern exactly.  A disagreement *between* paths is as much a finding
as a wrong result: the four paths claim bit-identity, and this harness
is where that claim is enforced against the hardest known inputs.

The harness never consults the oracle: the frozen corpus is the
authority at replay time, which keeps the CI gate fast and makes a
corpus failure unambiguous — either a table regressed or the corpus
must be consciously re-mined.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.generator import GeneratedFunction, target_bits
from repro.core.validate import _evaluate_bits_all
from repro.eval.adversarial.corpus import Corpus, list_corpora, load_corpus
from repro.eval.adversarial.generators import input_value
from repro.obs import metrics, timed_span

__all__ = ["AuditFailure", "CorpusAudit", "audit_corpus",
           "audit_corpus_dir", "render_audits"]

#: The evaluation paths every corpus replays through (the parallel path
#: joins when the audit runs with ``workers`` > 1).
PATHS = ("scalar", "batch", "instrumented", "parallel")


@dataclass(frozen=True)
class AuditFailure:
    """One entry one path got wrong (bits differ from the frozen want)."""

    function: str
    target: str
    path: str
    x_bits: int
    want_bits: int
    got_bits: int

    def __str__(self) -> str:
        return (f"{self.function}/{self.target} [{self.path}] "
                f"x={hex(self.x_bits)}: got {hex(self.got_bits)}, "
                f"want {hex(self.want_bits)}")


@dataclass
class CorpusAudit:
    """The outcome of replaying one corpus through every path."""

    function: str
    target: str
    size: int
    paths: tuple[str, ...]
    failures: list[AuditFailure]

    @property
    def ok(self) -> bool:
        return not self.failures


def _replay_chunk(payload: tuple) -> list[tuple[int, int, int]]:
    """Worker task: scalar-replay one corpus chunk on a rebuilt function.

    Returns ``(x_bits, want_bits, got_bits)`` mismatches only — the
    payload already carries the frozen expectations, so workers never
    touch the oracle or the corpus files.
    """
    data, items = payload
    from repro.libm.serialize import function_from_dict

    fn = function_from_dict(data)
    fmt = fn.spec.target
    out = []
    for x_bits, want_bits in items:
        got = fn.evaluate_bits(input_value(fmt, x_bits))
        if got != want_bits:
            out.append((x_bits, want_bits, got))
    return out


def audit_corpus(
    corpus: Corpus,
    *,
    fn: GeneratedFunction | None = None,
    workers: int | str | None = None,
) -> CorpusAudit:
    """Replay one corpus through every evaluation path.

    ``fn`` defaults to the shipped frozen table for the corpus's
    (function, target); pass a freshly generated function to audit an
    unshipped table against an ad-hoc corpus.  The parallel path only
    runs when ``workers`` resolves above 1 — it costs a process pool.
    """
    from repro.parallel.shards import resolve_workers

    if fn is None:
        from repro.libm.runtime import load_function

        fn = load_function(corpus.function, corpus.target)
    fmt = fn.spec.target
    n_workers = resolve_workers(workers)
    paths = PATHS if n_workers > 1 else PATHS[:3]

    failures: list[AuditFailure] = []

    def fail(path: str, x_bits: int, want: int, got: int) -> None:
        failures.append(AuditFailure(corpus.function, corpus.target,
                                     path, x_bits, want, got))

    with timed_span("adversarial.audit", fn=corpus.function,
                    target=corpus.target, paths=len(paths)):
        xs = [input_value(fmt, e.x_bits) for e in corpus]

        for e, x in zip(corpus, xs):
            got = fn.evaluate_bits(x)
            if got != e.want_bits:
                fail("scalar", e.x_bits, e.want_bits, got)

        for e, got in zip(corpus, _evaluate_bits_all(fn, xs)):
            if got != e.want_bits:
                fail("batch", e.x_bits, e.want_bits, got)

        from repro.libm.runtime import instrument

        inst = instrument(fn, prefix=f"adversarial.{corpus.function}")
        for e, x in zip(corpus, xs):
            got = target_bits(fmt, inst.evaluate(x))
            if got != e.want_bits:
                fail("instrumented", e.x_bits, e.want_bits, got)

        if n_workers > 1:
            from repro.libm.serialize import function_to_dict
            from repro.parallel import plan_chunks, run_tasks

            data = function_to_dict(fn)
            items = [(e.x_bits, e.want_bits) for e in corpus]
            payloads = [(data, items[a:b])
                        for a, b in plan_chunks(len(items), n_workers)]
            parts = run_tasks(_replay_chunk, payloads, workers=n_workers,
                              label=f"adversarial:{corpus.function}")
            for part in parts:
                for x_bits, want, got in part:
                    fail("parallel", x_bits, want, got)

    metrics.counter("adversarial.corpora").inc()
    metrics.counter("adversarial.checked").inc(len(corpus) * len(paths))
    metrics.counter("adversarial.failed").inc(len(failures))
    return CorpusAudit(corpus.function, corpus.target, len(corpus),
                       paths, failures)


def audit_corpus_dir(
    directory: str | Path,
    *,
    functions: list[str] | None = None,
    target: str | None = None,
    workers: int | str | None = None,
    loader=None,
) -> list[CorpusAudit]:
    """Replay every committed corpus under ``directory``.

    ``functions``/``target`` filter which corpora replay; schema-invalid
    files raise :class:`~repro.eval.adversarial.corpus.CorpusError`
    (a frozen corpus must never be silently skipped).  ``loader``
    overrides how ``(fn_name, target)`` resolves to a runnable function
    (default: the shipped frozen tables) — tests audit ad-hoc small-
    format corpora this way.
    """
    if loader is None:
        from repro.libm.runtime import load_function

        loader = load_function
    audits = []
    for fn_name, tgt, path in list_corpora(directory):
        if functions is not None and fn_name not in functions:
            continue
        if target is not None and tgt != target:
            continue
        audits.append(audit_corpus(load_corpus(path),
                                   fn=loader(fn_name, tgt),
                                   workers=workers))
    return audits


def render_audits(audits: list[CorpusAudit]) -> str:
    """Text report: one line per corpus, failures itemized below."""
    if not audits:
        return "(no adversarial corpora found)\n"
    out = []
    width = max(len(f"{a.function}.{a.target}") for a in audits) + 2
    for a in audits:
        name = f"{a.function}.{a.target}"
        status = ("ok" if a.ok else f"FAIL({len(a.failures)})")
        out.append(f"{name:{width}s} {a.size:4d} entries  "
                   f"{len(a.paths)} paths  {status}")
        for f in a.failures[:8]:
            out.append(f"    {f}")
        if len(a.failures) > 8:
            out.append(f"    ... and {len(a.failures) - 8} more")
    total = sum(len(a.failures) for a in audits)
    out.append(f"{len(audits)} corpora, "
               f"{sum(a.size for a in audits)} entries, {total} failures")
    return "\n".join(out) + "\n"
