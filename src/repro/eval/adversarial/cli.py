"""``python -m repro adversarial`` — mine or check hostile-input corpora.

Two modes:

* ``mine`` — run the corpus factory for the selected (function, target)
  pairs and freeze the results under ``--dir`` (oracle required; this
  is how the committed corpora are refreshed after a conscious table
  change);
* ``check`` — replay the committed corpora through every evaluation
  path (no oracle; this is the CI gate's engine).  Exit status 1 when
  any entry fails on any path.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["add_arguments", "run"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("mode", choices=("mine", "check"),
                        help="mine: refresh corpora (oracle); "
                             "check: replay committed corpora (no oracle)")
    parser.add_argument("--dir", default=None, metavar="DIR",
                        help="corpus directory "
                             "(default: tests/data/adversarial)")
    parser.add_argument("--target", choices=("float32", "posit32"),
                        default=None, help="restrict to one target format")
    parser.add_argument("--functions", nargs="*", default=None,
                        metavar="FN", help="restrict to these functions")
    parser.add_argument("--workers", default=None, metavar="N|auto",
                        help="process-pool width; >1 adds the parallel "
                             "replay path (check) or fans mining out")
    parser.add_argument("--seed", type=int, default=2021,
                        help="mining seed (mine mode)")


def _pairs(args) -> list[tuple[str, str]]:
    from repro.libm.runtime import FLOAT32_FUNCTIONS, POSIT32_FUNCTIONS

    shipped = ([(f, "float32") for f in FLOAT32_FUNCTIONS]
               + [(f, "posit32") for f in POSIT32_FUNCTIONS])
    return [(f, t) for f, t in shipped
            if (args.target is None or t == args.target)
            and (args.functions is None or f in args.functions)]


def run(args: argparse.Namespace) -> int:
    from repro.eval.adversarial import (audit_corpus_dir, default_corpus_dir,
                                        mine_corpora, render_audits)
    from repro.parallel import parse_workers

    directory = args.dir if args.dir is not None else default_corpus_dir(".")
    workers = parse_workers(args.workers)

    if args.mode == "mine":
        pairs = _pairs(args)
        paths = mine_corpora(pairs, directory, seed=args.seed,
                             workers=workers)
        for p in paths:
            print(f"wrote {p}")
        return 0

    audits = audit_corpus_dir(directory, functions=args.functions,
                              target=args.target, workers=workers)
    sys.stdout.write(render_audits(audits))
    if not audits:
        return 1
    return 0 if all(a.ok for a in audits) else 1
