"""Adversarial hard-case corpora: mined hostile inputs, frozen per-
function regression corpora, and a differential audit harness.

The paper sidesteps the table maker's dilemma by enumerating every
input; the sampled 32-bit pipeline cannot, so this subsystem mines the
inputs most likely to break a correctly-rounded claim — rounding-
boundary grazers, range-reduction seams, special-value frontiers — and
freezes them as committed JSON corpora that every shipped table must
replay bit-identically through all four evaluation paths (scalar,
batch, instrumented, parallel).

Layout:

* :mod:`~repro.eval.adversarial.corpus` — the versioned corpus file
  format and its schema checker;
* :mod:`~repro.eval.adversarial.generators` — per-(function, format)
  hostile-input candidate generators;
* :mod:`~repro.eval.adversarial.mine` — the corpus factory: generate,
  de-duplicate, rank by exact boundary distance, freeze;
* :mod:`~repro.eval.adversarial.audit` — the differential replay
  harness and its findings;
* :mod:`~repro.eval.adversarial.cli` — ``python -m repro adversarial
  mine|check``.
"""

from __future__ import annotations

from repro.eval.adversarial.audit import (AuditFailure, CorpusAudit,
                                          audit_corpus, audit_corpus_dir,
                                          render_audits)
from repro.eval.adversarial.corpus import (CORPUS_VERSION, Corpus,
                                           CorpusEntry, CorpusError,
                                           corpus_path, default_corpus_dir,
                                           list_corpora, load_corpus,
                                           save_corpus, schema_errors)
from repro.eval.adversarial.generators import (boundary_ordinal_candidates,
                                               graze_candidates,
                                               random_candidates,
                                               seam_candidates,
                                               special_frontier_candidates)
from repro.eval.adversarial.mine import (corpus_inputs, mine_corpora,
                                         mine_corpus)

__all__ = [
    "AuditFailure", "CorpusAudit", "audit_corpus", "audit_corpus_dir",
    "render_audits",
    "CORPUS_VERSION", "Corpus", "CorpusEntry", "CorpusError",
    "corpus_path", "default_corpus_dir", "list_corpora", "load_corpus",
    "save_corpus", "schema_errors",
    "boundary_ordinal_candidates", "graze_candidates", "random_candidates",
    "seam_candidates", "special_frontier_candidates",
    "corpus_inputs", "mine_corpus", "mine_corpora",
]
