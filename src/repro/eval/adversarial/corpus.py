"""The frozen adversarial corpus file format (versioned, exact, JSON).

A corpus accompanies one shipped (function, target) table as
``tests/data/adversarial/<function>.<target>.json``.  Like the table
certificates (:mod:`repro.analysis.certify.format`) it is versioned and
stores every number losslessly: inputs and expected results are *bit
patterns* of the target format (hex strings), never decimal floats, so
a corpus can be replayed byte-identically on any platform.

Each entry records:

* ``x`` — the input, as a target-format bit pattern;
* ``want`` — the correctly rounded result, as a target-format bit
  pattern (from the special-case layer or the oracle at mining time);
* ``d`` — the exact boundary distance of the result in interval widths
  (``repr`` of the float; 0.5 for special/unbounded results), kept for
  ranking and reporting — the replay harness never recomputes it;
* ``src`` — provenance tag: which generator produced the input.

Bump :data:`CORPUS_VERSION` on any schema change — the loader rejects
unknown versions rather than guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

__all__ = ["CORPUS_VERSION", "Corpus", "CorpusEntry", "CorpusError",
           "SOURCES", "corpus_path", "default_corpus_dir", "list_corpora",
           "load_corpus", "save_corpus", "schema_errors"]

#: Schema version this tree reads and writes.
CORPUS_VERSION = 1

#: The provenance tags a generator may stamp on an entry.
SOURCES = ("special", "seam", "boundary", "graze", "random")

_CORPUS_KEYS = frozenset({"corpus_version", "function", "target", "entries"})
_ENTRY_KEYS = frozenset({"x", "want", "d", "src"})


class CorpusError(Exception):
    """A corpus file is missing, unreadable, or not valid JSON."""


@dataclass(frozen=True)
class CorpusEntry:
    """One frozen hostile input with its expected rounded result."""

    x_bits: int
    want_bits: int
    distance: float
    source: str

    def to_json(self) -> dict[str, Any]:
        return {"x": hex(self.x_bits), "want": hex(self.want_bits),
                "d": repr(self.distance), "src": self.source}

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "CorpusEntry":
        return cls(int(doc["x"], 16), int(doc["want"], 16),
                   float(doc["d"]), doc["src"])


@dataclass
class Corpus:
    """A frozen per-(function, target) adversarial regression corpus."""

    function: str
    target: str
    entries: list[CorpusEntry]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self.entries)

    def to_json(self) -> dict[str, Any]:
        return {"corpus_version": CORPUS_VERSION,
                "function": self.function,
                "target": self.target,
                "entries": [e.to_json() for e in self.entries]}


def default_corpus_dir(root: str | Path = ".") -> Path:
    """The committed corpus directory under a repository root."""
    return Path(root) / "tests" / "data" / "adversarial"


def corpus_path(directory: str | Path, function: str, target: str) -> Path:
    """``<dir>/<function>.<target>.json``."""
    return Path(directory) / f"{function}.{target}.json"


def list_corpora(directory: str | Path) -> list[tuple[str, str, Path]]:
    """Sorted ``(function, target, path)`` triples of the committed files."""
    d = Path(directory)
    if not d.is_dir():
        return []
    out = []
    for p in sorted(d.glob("*.json")):
        parts = p.name.split(".")
        if len(parts) == 3:
            out.append((parts[0], parts[1], p))
    return out


def save_corpus(corpus: Corpus, directory: str | Path) -> Path:
    """Write the corpus to its canonical path; returns the path."""
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    path = corpus_path(d, corpus.function, corpus.target)
    path.write_text(json.dumps(corpus.to_json(), indent=1) + "\n",
                    encoding="utf-8")
    return path


def load_corpus(path: str | Path) -> Corpus:
    """Load and schema-check one corpus file.

    Raises :class:`CorpusError` for unreadable/invalid files (including
    schema findings — a frozen corpus that fails its own schema must
    never be silently skipped by the replay gate).
    """
    p = Path(path)
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except OSError as e:
        raise CorpusError(f"cannot read corpus {p}: {e}") from e
    except json.JSONDecodeError as e:
        raise CorpusError(f"corpus {p} is not valid JSON: {e}") from e
    errs = schema_errors(doc)
    if errs:
        raise CorpusError(f"corpus {p} fails its schema: " + "; ".join(errs))
    return Corpus(doc["function"], doc["target"],
                  [CorpusEntry.from_json(e) for e in doc["entries"]])


def _hex_errors(doc: dict, key: str, where: str, errs: list[str]) -> None:
    v = doc.get(key)
    if not isinstance(v, str) or not v.startswith("0x"):
        errs.append(f"{where}: {key!r} must be a hex string")
        return
    try:
        int(v, 16)
    except ValueError:
        errs.append(f"{where}: {key!r} is not valid hex: {v!r}")


def schema_errors(doc: Any) -> list[str]:
    """Structural findings for a parsed corpus document (empty = valid)."""
    errs: list[str] = []
    if not isinstance(doc, dict):
        return ["corpus document must be a JSON object"]
    if set(doc) != _CORPUS_KEYS:
        errs.append(f"corpus keys must be {sorted(_CORPUS_KEYS)}, "
                    f"got {sorted(doc)}")
        return errs
    if doc["corpus_version"] != CORPUS_VERSION:
        errs.append(f"unknown corpus_version {doc['corpus_version']!r} "
                    f"(this tree reads {CORPUS_VERSION})")
        return errs
    for key in ("function", "target"):
        if not isinstance(doc[key], str) or not doc[key]:
            errs.append(f"{key!r} must be a non-empty string")
    entries = doc["entries"]
    if not isinstance(entries, list) or not entries:
        errs.append("'entries' must be a non-empty list")
        return errs
    seen: set[str] = set()
    for i, e in enumerate(entries):
        where = f"entry {i}"
        if not isinstance(e, dict):
            errs.append(f"{where}: must be an object")
            continue
        if set(e) != _ENTRY_KEYS:
            errs.append(f"{where}: keys must be {sorted(_ENTRY_KEYS)}")
            continue
        _hex_errors(e, "x", where, errs)
        _hex_errors(e, "want", where, errs)
        try:
            d = float(e["d"])
            if not 0.0 <= d <= 0.5:
                errs.append(f"{where}: distance {d!r} outside [0, 0.5]")
        except (TypeError, ValueError):
            errs.append(f"{where}: 'd' must parse as a float")
        if e.get("src") not in SOURCES:
            errs.append(f"{where}: unknown source tag {e.get('src')!r}")
        x = e.get("x")
        if isinstance(x, str):
            if x in seen:
                errs.append(f"{where}: duplicate input {x}")
            seen.add(x)
    return errs
