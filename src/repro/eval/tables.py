"""Table 3 (generation statistics) and shared report helpers."""

from __future__ import annotations

import importlib
from dataclasses import dataclass

from repro.libm.runtime import FLOAT32_FUNCTIONS, POSIT32_FUNCTIONS

__all__ = ["GenerationRow", "table3_rows", "render_table3"]


@dataclass
class GenerationRow:
    """One row of Table 3, read from the frozen library data."""

    function: str
    target: str
    gen_time_min: float
    oracle_share: float
    reduced_inputs: int
    npolys: dict[str, int]
    degree: dict[str, int]
    terms: dict[str, int]
    final_check: tuple[int, int] | None  # (misses, n)
    #: wall time per pipeline phase (GenStats.phase_s); empty for tables
    #: frozen before the observability layer existed
    phase_s: dict[str, float] = None  # type: ignore[assignment]


def table3_rows(target: str = "float32") -> list[GenerationRow]:
    """Generation statistics of every shipped function for the target."""
    pkg = f"repro.libm.data_{target}"
    names = FLOAT32_FUNCTIONS if target == "float32" else POSIT32_FUNCTIONS
    rows = []
    for name in names:
        try:
            mod = importlib.import_module(f"{pkg}.{name}")
        except ImportError:
            continue
        st = mod.DATA["stats"]
        per = st["per_fn"]
        fc = st.get("final_check")
        total = st.get("total_time_s", st["gen_time_s"]) or 1.0
        rows.append(GenerationRow(
            function=name,
            target=target,
            gen_time_min=total / 60.0,
            oracle_share=st["oracle_time_s"] / max(st["gen_time_s"], 1e-9),
            reduced_inputs=st["reduced_count"],
            npolys={k: v["npolys"] for k, v in per.items()},
            degree={k: v["degree"] for k, v in per.items()},
            terms={k: v["terms"] for k, v in per.items()},
            final_check=None if fc is None else (fc["misses"], fc["n"]),
            phase_s=dict(st.get("phase_s", {})),
        ))
    return rows


def render_table3(rows: list[GenerationRow], title: str) -> str:
    """Paper-style Table 3: time, reduced inputs, polys, degree, terms."""
    out = [title,
           f"{'f(x)':8s} {'gen(min)':>9s} {'reduced':>9s} "
           f"{'#polys':>16s} {'degree':>8s} {'terms':>7s} {'residual':>10s}"]
    out.append("-" * 72)
    for r in rows:
        polys = "+".join(str(v) for v in r.npolys.values())
        deg = max(r.degree.values())
        terms = max(r.terms.values())
        resid = ("n/a" if r.final_check is None
                 else f"{r.final_check[0]}/{r.final_check[1]}")
        out.append(f"{r.function:8s} {r.gen_time_min:>9.1f} "
                   f"{r.reduced_inputs:>9d} {polys:>16s} {deg:>8d} "
                   f"{terms:>7d} {resid:>10s}")
    out.append("")
    out.append("(#polys lists the piecewise table sizes of each reduced "
               "elementary function; residual = final sampled check)")
    timed = [r for r in rows if r.phase_s]
    if timed:
        out.append("")
        out.append("per-phase wall time (s): "
                   "oracle / reduced intervals / piecewise synthesis")
        for r in timed:
            out.append(f"  {r.function:8s} "
                       f"{r.phase_s.get('oracle', 0.0):>8.1f} / "
                       f"{r.phase_s.get('reduced', 0.0):>8.1f} / "
                       f"{r.phase_s.get('piecewise', 0.0):>8.1f}")
    return "\n".join(out) + "\n"
