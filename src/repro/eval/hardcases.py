"""Hard-case mining: inputs whose result grazes a rounding boundary.

The table maker's dilemma concentrates all difficulty in inputs whose
exact result lies a tiny fraction of an ulp away from a rounding
boundary.  The paper handles them by construction — it enumerates *all*
inputs, so every hard case lands in the constraint set, and its
"highly constrained interval" sampling rule pushes them into the LP
sample.  Our sampled 32-bit pipeline mines them explicitly instead:

* rank candidate inputs by the relative distance of the exact result
  from the nearest edge of its rounding interval (computed exactly, via
  the oracle's rational bracket), and
* feed the hardest candidates into both the generation input set and the
  Table 1/2 correctness pools — they are precisely the inputs that
  defeat the double-precision baselines (X(1)..X(5) in Table 1).

The distance computation is Ziv-style: the oracle bracket starts at
:data:`_PREC` bits and the precision doubles whenever the bracket is too
coarse to *prove* the distance — it straddles a rounding boundary (the
two endpoints round to different target patterns) or the endpoint
distances disagree beyond :data:`_DIST_TOL`.  A fixed precision would
silently return a coarse distance exactly on the deepest-grazing inputs,
the ones mining exists to find.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable

from repro.core.intervals import TargetFormat, target_rounding_interval
from repro.fp.bits import DBL_MIN_SUBNORMAL
from repro.oracle.functions import get_function
from repro.oracle.mpmath_oracle import Oracle, default_oracle
from repro.posit.format import PositFormat

__all__ = ["boundary_distance", "mine_hard_cases"]

#: Starting bracketing precision; generous for 32-bit targets whose hard
#: cases need ~2**-60 resolution, and escalated automatically beyond it.
_PREC = 256
#: Precision ceiling for the escalation loop.  A bracket still straddling
#: a boundary here is treated as *on* the boundary (distance 0): the only
#: reals this misdecides are within 2**-4000 of an exact tie.
_MAX_PREC = 4096
#: Required agreement between the distances at the two bracket endpoints,
#: in interval widths.  2**-20 resolves every ranking decision mining
#: makes while keeping the common case at one bracket evaluation.
_DIST_TOL = Fraction(1, 1 << 20)


def boundary_distance(
    fn_name: str,
    x: float,
    fmt: TargetFormat,
    oracle: Oracle = default_oracle,
    prec: int = _PREC,
    max_prec: int = _MAX_PREC,
) -> float:
    """Distance of f(x) from the nearest rounding boundary, in interval
    widths (0 = exactly on a boundary, 0.5 = dead centre).

    Exactly representable results return 0.5 (nothing to graze), and
    results whose rounding interval is unbounded (overflow regions of
    IEEE targets, the saturation intervals at a posit's maxpos/minpos)
    return 0.5 as well — their rounding can never be grazed.

    ``prec`` is the starting bracket precision; it escalates (doubling,
    up to ``max_prec``) until the bracket provably pins the distance.  A
    bracket that still straddles a boundary at ``max_prec`` is reported
    as distance 0.0 — the input *is* a tie to every realistic tolerance.
    """
    fn = get_function(fn_name)
    while True:
        lo_br, hi_br, exact = oracle.bracket(fn, x, prec)
        if exact:
            return 0.5
        lo_bits = fmt.from_fraction(lo_br)
        if lo_bits == fmt.from_fraction(hi_br):
            d = _bracket_distance(fmt, lo_bits, lo_br, hi_br)
            if d is not None:
                return d
        if prec >= max_prec:
            # still straddling a boundary: an exact (or indistinguishably
            # near-exact) tie the function's exact_hook does not model
            return 0.0
        prec = min(prec * 2, max_prec)


def _bracket_distance(fmt: TargetFormat, y_bits: int,
                      lo_br: Fraction, hi_br: Fraction) -> float | None:
    """Distance certified by a bracket that rounds unambiguously.

    Returns None when the bracket endpoints' distances disagree by more
    than :data:`_DIST_TOL` (caller escalates).  The distance function
    ``d(q) = min(q - lo, hi - q) / width`` is concave on the interval,
    so agreeing endpoints bound the value over the whole bracket.
    """
    iv = target_rounding_interval(fmt, y_bits)
    if math.isinf(iv.lo) or math.isinf(iv.hi):
        return 0.5
    lo, hi = Fraction(iv.lo), Fraction(iv.hi)
    width = hi - lo
    if width == 0:
        return 0.5
    # the posit ±minpos saturation intervals carry a stand-in edge for
    # the open boundary at 0 (posits never round a non-zero value to
    # zero), so only the tie-side edge is a genuine, grazeable boundary
    posit = isinstance(fmt, PositFormat)
    lo_real = not (posit and abs(iv.lo) == DBL_MIN_SUBNORMAL)
    hi_real = not (posit and abs(iv.hi) == DBL_MIN_SUBNORMAL)

    def dist(q: Fraction) -> Fraction:
        edges = ([q - lo] if lo_real else []) + ([hi - q] if hi_real else [])
        return min(edges) / width

    d_lo, d_hi = dist(lo_br), dist(hi_br)
    if abs(d_hi - d_lo) > _DIST_TOL:
        return None
    d = (d_lo + d_hi) / 2
    return max(0.0, min(0.5, float(d)))


def mine_hard_cases(
    fn_name: str,
    fmt: TargetFormat,
    candidates: Iterable[float],
    keep: int,
    oracle: Oracle = default_oracle,
) -> list[float]:
    """The ``keep`` candidates whose results graze boundaries hardest."""
    scored: list[tuple[float, float]] = []
    for x in candidates:
        scored.append((boundary_distance(fn_name, x, fmt, oracle), x))
    scored.sort(key=lambda t: t[0])
    return [x for _, x in scored[:keep]]
