"""Hard-case mining: inputs whose result grazes a rounding boundary.

The table maker's dilemma concentrates all difficulty in inputs whose
exact result lies a tiny fraction of an ulp away from a rounding
boundary.  The paper handles them by construction — it enumerates *all*
inputs, so every hard case lands in the constraint set, and its
"highly constrained interval" sampling rule pushes them into the LP
sample.  Our sampled 32-bit pipeline mines them explicitly instead:

* rank candidate inputs by the relative distance of the exact result
  from the nearest edge of its rounding interval (computed exactly, via
  the oracle's rational bracket), and
* feed the hardest candidates into both the generation input set and the
  Table 1/2 correctness pools — they are precisely the inputs that
  defeat the double-precision baselines (X(1)..X(5) in Table 1).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

from repro.core.intervals import TargetFormat, target_rounding_interval
from repro.oracle.functions import get_function
from repro.oracle.mpmath_oracle import Oracle, default_oracle

__all__ = ["boundary_distance", "mine_hard_cases"]

#: Bracketing precision for the distance estimate; generous for 32-bit
#: targets whose hard cases need ~2**-60 resolution.
_PREC = 256


def boundary_distance(
    fn_name: str,
    x: float,
    fmt: TargetFormat,
    oracle: Oracle = default_oracle,
) -> float:
    """Distance of f(x) from the nearest rounding boundary, in interval
    widths (0 = exactly on a boundary, 0.5 = dead centre).

    Exactly representable results return 0.5 (nothing to graze), and
    results whose rounding interval is unbounded (overflow/saturation
    regions) return 0.5 as well.
    """
    fn = get_function(fn_name)
    lo_br, hi_br, exact = oracle.bracket(fn, x, _PREC)
    if exact:
        return 0.5
    q = (lo_br + hi_br) / 2
    y_bits = fmt.from_fraction(q)
    iv = target_rounding_interval(fmt, y_bits)
    if math.isinf(iv.lo) or math.isinf(iv.hi):
        return 0.5
    lo, hi = Fraction(iv.lo), Fraction(iv.hi)
    width = hi - lo
    if width == 0:
        return 0.5
    d = min(q - lo, hi - q) / width
    return max(0.0, min(0.5, float(d)))


def mine_hard_cases(
    fn_name: str,
    fmt: TargetFormat,
    candidates: Iterable[float],
    keep: int,
    oracle: Oracle = default_oracle,
) -> list[float]:
    """The ``keep`` candidates whose results graze boundaries hardest."""
    scored: list[tuple[float, float]] = []
    for x in candidates:
        scored.append((boundary_distance(fn_name, x, fmt, oracle), x))
    scored.sort(key=lambda t: t[0])
    return [x for _, x in scored[:keep]]
