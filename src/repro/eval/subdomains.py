"""Figure 5: performance vs number of piecewise sub-domains.

The paper regenerates log2/log10 with 2**0 .. 2**12 sub-domains and
measures the runtime change relative to the single polynomial, marking
the split counts where the polynomial degree drops.  We do the same with
forced ``start_index_bits == max_index_bits`` piecewise budgets over a
sampled input set; each variant is validated before being timed.  The
sweep is capped (default 2**8) to keep the pure-Python regeneration
affordable; the curve's shape — flat-to-slightly-slower at first, then a
speedup as the degree drops, flattening once table lookup dominates — is
the reproduction target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.generator import FunctionSpec, generate
from repro.core.piecewise import PiecewiseConfig
from repro.core.sampling import sample_values
from repro.core.validate import validate
from repro.eval.timing import time_scalar, timing_inputs
from repro.fp.formats import FLOAT32
from repro.rangereduction.domains import sampling_domain
from repro.rangereduction import reduction_for

__all__ = ["SweepPoint", "subdomain_sweep", "render_sweep"]


@dataclass
class SweepPoint:
    """One forced split size of the Figure 5 sweep."""

    index_bits: int
    ns_per_call: float
    max_degree: int
    max_terms: int
    mismatches: int

    def speedup_over(self, base_ns: float) -> float:
        return base_ns / self.ns_per_call


def subdomain_sweep(
    fn_name: str,
    max_bits: int = 8,
    n_inputs: int = 6000,
    seed: int = 11,
) -> list[SweepPoint]:
    """Regenerate ``fn_name`` at forced split counts 2**0..2**max_bits."""
    fmt = FLOAT32
    rr = reduction_for(fn_name, fmt)
    lo, hi = sampling_domain(fn_name, fmt, rr)
    inputs = sample_values(fmt, n_inputs, random.Random(seed), lo, hi)
    check = sample_values(fmt, n_inputs // 3, random.Random(seed + 1), lo, hi)
    xs = timing_inputs(fn_name, fmt, 512)

    points = []
    for bits in range(0, max_bits + 1):
        spec = FunctionSpec(fn_name, fmt, rr,
                            PiecewiseConfig(start_index_bits=bits,
                                            max_index_bits=bits))
        g = generate(spec, inputs)
        bad = validate(g, check)
        stats = next(iter(g.stats.per_fn.values()))
        points.append(SweepPoint(
            index_bits=bits,
            ns_per_call=time_scalar(g.evaluate, xs).median,
            max_degree=stats["degree"],
            max_terms=stats["terms"],
            mismatches=len(bad),
        ))
    return points


def render_sweep(fn_name: str, points: list[SweepPoint]) -> str:
    """Figure 5 as text: speedup series with degree-drop markers."""
    base = points[0].ns_per_call
    out = [f"Figure 5 series for {fn_name}: speedup vs single polynomial",
           f"{'subdomains':>12s} {'speedup':>9s} {'degree':>7s} "
           f"{'terms':>6s} {'validated':>10s}"]
    prev_deg = points[0].max_degree
    for p in points:
        marker = " *degree drop*" if p.max_degree < prev_deg else ""
        prev_deg = min(prev_deg, p.max_degree)
        out.append(f"{2 ** p.index_bits:>12d} "
                   f"{p.speedup_over(base):>8.2f}x {p.max_degree:>7d} "
                   f"{p.max_terms:>6d} "
                   f"{'ok' if p.mismatches == 0 else 'FAIL':>10s}{marker}")
    return "\n".join(out) + "\n"
