"""Correctness audits: Tables 1 and 2.

For each elementary function the harness builds an input pool — a
representable-value-proportional random sample over the function's
domain, exhaustive neighbourhoods of the special-case boundaries, and
mined hard cases (results grazing rounding boundaries; these are what
defeat the double-precision baselines) — and counts, for RLIBM-32 and
every baseline, the inputs whose final rounded result differs from the
correctly rounded one.

The paper enumerates all 2**32 inputs; a pure-Python sweep cannot
(DESIGN.md §3), so the tables report ``wrong/segment`` counts over the
pool and the *rates* are what reproduces Table 1/2's shape: the RLIBM
column must be all-zero, float baselines wrong on a visible fraction,
double baselines only on (some of) the hard cases.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.baselines.base import BaselineLibrary
from repro.core.generator import GeneratedFunction, target_bits
from repro.core.validate import _evaluate_bits_all
from repro.core.intervals import TargetFormat
from repro.core.sampling import boundary_values, sample_values
from repro.eval.hardcases import mine_hard_cases
from repro.rangereduction.domains import boundary_centers, sampling_domain
from repro.oracle.mpmath_oracle import Oracle, default_oracle
from repro.rangereduction import reduction_for

__all__ = ["CorrectnessRow", "build_pool", "clear_pool_cache",
           "audit_function", "render_rows"]


@dataclass
class CorrectnessRow:
    """One function's wrong-result counts across libraries."""

    function: str
    pool_size: int
    #: library display name -> wrong count, or None for N/A.
    wrong: dict[str, int | None] = field(default_factory=dict)


#: Memoized pools keyed by every build setting (oracle by identity —
#: distinct oracle instances may disagree on precision budgets).  Hard-
#: case mining is minutes of mpmath work per function at Table-1 sizes;
#: repeated audits in one process (CLI reruns, the benchmark suite,
#: parallel sweeps) must not redo it for identical settings.
_POOL_CACHE: dict[tuple, list[float]] = {}


def clear_pool_cache() -> None:
    """Drop every memoized :func:`build_pool` result."""
    _POOL_CACHE.clear()


def build_pool(
    fn_name: str,
    fmt: TargetFormat,
    n_random: int = 3000,
    n_hard: int = 200,
    hard_candidates: int = 6000,
    seed: int = 7,
    oracle: Oracle = default_oracle,
    corpus_dir=None,
) -> list[float]:
    """The Table 1/2 input pool for one function (memoized per settings).

    ``corpus_dir`` optionally merges the committed adversarial corpus
    for this (function, format) into the pool — the frozen hostile
    inputs then count toward every library's wrong-result column, not
    just the freshly mined ones.
    """
    key = (fn_name, fmt, n_random, n_hard, hard_candidates, seed,
           id(oracle), None if corpus_dir is None else str(corpus_dir))
    cached = _POOL_CACHE.get(key)
    if cached is not None:
        return list(cached)
    rr = reduction_for(fn_name, fmt)
    lo, hi = sampling_domain(fn_name, fmt, rr)
    rng = random.Random(seed)
    pool = sample_values(fmt, n_random, rng, lo, hi)
    pool += boundary_values(fmt, boundary_centers(fn_name, rr, lo, hi), 32)
    if n_hard:
        cands = [x for x in sample_values(fmt, hard_candidates,
                                          random.Random(seed + 1), lo, hi)
                 if rr.special(x) is None]
        pool += mine_hard_cases(fn_name, fmt, cands, n_hard, oracle)
    if corpus_dir is not None:
        from repro.eval.adversarial.corpus import corpus_path, load_corpus
        from repro.eval.adversarial.generators import input_value
        from repro.libm.serialize import TARGETS_BY_NAME

        target = next((n for n, f in TARGETS_BY_NAME.items() if f is fmt),
                      None)
        path = (corpus_path(corpus_dir, fn_name, target)
                if target is not None else None)
        if path is not None and path.exists():
            pool += [x for x in (input_value(fmt, e.x_bits)
                                 for e in load_corpus(path))
                     if math.isfinite(x)]
    # dedupe, keep order stable for reproducibility
    pool = sorted(set(pool))
    _POOL_CACHE[key] = pool
    # callers get a private copy: the memoized list must stay pristine
    return list(pool)


def audit_function(
    fn_name: str,
    fmt: TargetFormat,
    rlibm: GeneratedFunction | None,
    baselines: dict[str, BaselineLibrary],
    pool: list[float],
    *,
    oracle: Oracle = default_oracle,
    workers: int | str | None = None,
    chunk_size: int | None = None,
) -> CorrectnessRow:
    """Count wrong results for RLIBM and each baseline over the pool.

    With ``workers`` > 1 the pool is chunked across a process pool;
    each chunk computes oracle references and per-library wrong counts
    independently, and the counts sum at the barrier — identical to the
    serial totals, since wrong-counting is per-input.
    """
    from repro.parallel.shards import resolve_workers

    n_workers = resolve_workers(workers)
    if n_workers > 1:
        return _audit_parallel(fn_name, fmt, rlibm, baselines, pool,
                               oracle, n_workers, chunk_size)
    rr = reduction_for(fn_name, fmt)
    refs: dict[float, int] = {}
    for x in pool:
        s = rr.special(x)
        refs[x] = (target_bits(fmt, s) if s is not None
                   else oracle.round_to_bits(fn_name, x, fmt))

    row = CorrectnessRow(fn_name, len(pool))
    if rlibm is not None:
        got = _evaluate_bits_all(rlibm, pool)   # batched, bit-identical
        row.wrong["RLIBM-32"] = sum(
            1 for x, g in zip(pool, got) if g != refs[x])
    for name, lib in baselines.items():
        if not lib.supports(fn_name):
            row.wrong[name] = None
            continue
        wrong = 0
        for x in pool:
            got = lib.call(fn_name, x)
            if target_bits(fmt, got) != refs[x]:
                wrong += 1
        row.wrong[name] = wrong
    return row


def _audit_chunk(payload: tuple) -> dict[str, int]:
    """Worker task: wrong counts for one pool chunk, every library."""
    fn_name, fmt, data, libs, xs, oracle = payload
    from repro.libm.serialize import function_from_dict

    rr = reduction_for(fn_name, fmt)
    refs = {}
    for x in xs:
        s = rr.special(x)
        refs[x] = (target_bits(fmt, s) if s is not None
                   else oracle.round_to_bits(fn_name, x, fmt))
    counts: dict[str, int] = {}
    if data is not None:
        fn = function_from_dict(data)
        got = _evaluate_bits_all(fn, xs)
        counts["RLIBM-32"] = sum(
            1 for x, g in zip(xs, got) if g != refs[x])
    for name, lib in libs.items():
        counts[name] = sum(
            1 for x in xs if target_bits(fmt, lib.call(fn_name, x)) != refs[x])
    return counts


def _audit_parallel(
    fn_name: str,
    fmt: TargetFormat,
    rlibm: GeneratedFunction | None,
    baselines: dict[str, BaselineLibrary],
    pool: list[float],
    oracle: Oracle,
    n_workers: int,
    chunk_size: int | None,
) -> CorrectnessRow:
    """Chunked audit: per-chunk wrong counts summed at the barrier."""
    from repro.libm.serialize import function_to_dict
    from repro.parallel import plan_chunks, run_tasks

    # the N/A pattern is decided once, in the parent, exactly as serial
    active = {name: lib for name, lib in baselines.items()
              if lib.supports(fn_name)}
    data = function_to_dict(rlibm) if rlibm is not None else None
    payloads = [(fn_name, fmt, data, active, pool[a:b], oracle)
                for a, b in plan_chunks(len(pool), n_workers, chunk_size)]
    parts = run_tasks(_audit_chunk, payloads, workers=n_workers,
                      label=f"audit:{fn_name}")

    row = CorrectnessRow(fn_name, len(pool))
    if rlibm is not None:
        row.wrong["RLIBM-32"] = sum(p["RLIBM-32"] for p in parts)
    for name in baselines:
        row.wrong[name] = (sum(p[name] for p in parts)
                           if name in active else None)
    return row


def render_rows(rows: list[CorrectnessRow], title: str) -> str:
    """Paper-style text table: checkmark for 0 wrong, X(count) otherwise."""
    if not rows:
        return title + "\n(no rows)\n"
    libs = list(rows[0].wrong)
    widths = [max(10, len(n) + 2) for n in libs]
    out = [title,
           f"(wrong results per pool; pool sizes ~{rows[0].pool_size} "
           "inputs incl. mined hard cases)"]
    header = f"{'function':10s}" + "".join(
        f"{n:>{w}s}" for n, w in zip(libs, widths))
    out.append(header)
    out.append("-" * len(header))
    for row in rows:
        cells = []
        for name, w in zip(libs, widths):
            v = row.wrong[name]
            cell = ("N/A" if v is None else
                    "ok" if v == 0 else f"X({v})")
            cells.append(f"{cell:>{w}s}")
        out.append(f"{row.function:10s}" + "".join(cells))
    return "\n".join(out) + "\n"
