"""Evaluation harness: correctness audits, timing, hard cases, sweeps."""

from __future__ import annotations

from repro.eval.correctness import (CorrectnessRow, audit_function, build_pool,
                                    render_rows)
from repro.eval.hardcases import boundary_distance, mine_hard_cases
from repro.eval.subdomains import SweepPoint, render_sweep, subdomain_sweep
from repro.eval.tables import GenerationRow, render_table3, table3_rows
from repro.eval.timing import (SpeedupRow, geomean, render_speedups,
                               speedup_rows, time_batch, time_scalar,
                               timing_inputs)
# last: adversarial composes the modules above (hardcases, correctness)
from repro.eval import adversarial

__all__ = [
    "CorrectnessRow", "audit_function", "build_pool", "render_rows",
    "boundary_distance", "mine_hard_cases",
    "SweepPoint", "render_sweep", "subdomain_sweep",
    "GenerationRow", "render_table3", "table3_rows",
    "SpeedupRow", "geomean", "render_speedups", "speedup_rows",
    "time_batch", "time_scalar", "timing_inputs",
    "adversarial",
]
