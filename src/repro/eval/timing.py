"""Performance measurement: Figures 3, 4 and the vectorization note.

The paper measures cycles per input with hardware counters over all
2**32 inputs; we measure wall-clock nanoseconds per call over shared
random input sets through the hardened :mod:`repro.obs.timing`
machinery (``time.perf_counter_ns``, a warmup pass, GC pinned off,
median/MAD outlier rejection — so speedup rows are stable enough to
diff across PRs and to feed the ``BENCH_*.json`` trajectory), and
report *relative* speedups — which is what every figure in the paper
shows.  :func:`time_scalar` and :func:`time_batch` return a
:class:`~repro.obs.timing.TimingResult` ``(median, mad, n)``; callers
that only want the point estimate take ``.median``.  All contenders run on
the same pure-Python substrate (DESIGN.md §3), so the ratios reflect
each design's cost model: piecewise-low-degree (RLIBM) vs
single-high-degree mini-max (glibc/Intel models) vs
evaluate-verify-escalate (CR-LIBM).

When tracing is enabled (``REPRO_TRACE``), every measured row is also
emitted as a ``bench.row`` event so benchmark numbers land in the same
JSONL stream as the generation statistics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.baselines.base import BaselineLibrary
from repro.core.generator import GeneratedFunction
from repro.core.intervals import TargetFormat
from repro.core.sampling import sample_values
from repro.obs import enabled, event
from repro.obs.timing import TimingResult, measure
from repro.rangereduction.domains import sampling_domain
from repro.rangereduction import reduction_for

__all__ = ["SpeedupRow", "TimingResult", "time_scalar", "time_batch",
           "speedup_rows", "geomean", "render_speedups", "timing_inputs"]


def timing_inputs(fn_name: str, fmt: TargetFormat, n: int = 1024,
                  seed: int = 99) -> list[float]:
    """Shared random inputs inside the function's non-special domain."""
    rr = reduction_for(fn_name, fmt)
    lo, hi = sampling_domain(fn_name, fmt, rr)
    xs = sample_values(fmt, n, random.Random(seed), lo, hi)
    return [x for x in xs if rr.special(x) is None]


def time_scalar(fn: Callable[[float], float], xs: Sequence[float],
                repeats: int = 5) -> TimingResult:
    """Robust nanoseconds per call: ``(median, mad, n)`` over N repeats."""

    def run():
        for x in xs:
            fn(x)

    return measure(run, repeats=repeats, per=len(xs))


def time_batch(fn: Callable[[Sequence[float]], np.ndarray],
               xs: Sequence[float], repeats: int = 5) -> TimingResult:
    """Robust nanoseconds per element for array-at-a-time evaluation."""
    arr = list(xs)
    return measure(lambda: fn(arr), repeats=repeats, per=len(arr))


@dataclass
class SpeedupRow:
    """Per-function timings (ns/call) and speedups vs RLIBM-32."""

    function: str
    rlibm_ns: float
    baseline_ns: dict[str, float | None] = field(default_factory=dict)

    def speedup(self, name: str) -> float | None:
        ns = self.baseline_ns.get(name)
        if ns is None:
            return None
        return ns / self.rlibm_ns


def speedup_rows(
    functions: Sequence[str],
    fmt: TargetFormat,
    rlibm_for: Callable[[str], GeneratedFunction],
    baselines: dict[str, BaselineLibrary],
    n_inputs: int = 512,
    repeats: int = 3,
) -> list[SpeedupRow]:
    """Time every function against every baseline on shared inputs."""
    from repro.core.generator import target_rounder

    rnd = target_rounder(fmt)
    rows = []
    for fn_name in functions:
        xs = timing_inputs(fn_name, fmt, n_inputs)
        g = rlibm_for(fn_name)
        row = SpeedupRow(fn_name, time_scalar(g.evaluate, xs, repeats).median)
        for name, lib in baselines.items():
            if not lib.supports(fn_name):
                row.baseline_ns[name] = None
                continue
            # the paper's methodology: call the library in double, then
            # round the result back to the target — both sides pay RN_T
            call = lib.call
            row.baseline_ns[name] = time_scalar(
                lambda x, _c=call, _f=fn_name, _r=rnd: _r(_c(_f, x)),
                xs, repeats).median
        if enabled():
            event("bench.row", fn=fn_name, target=str(fmt),
                  rlibm_ns=row.rlibm_ns, n=len(xs), repeats=repeats,
                  **{f"ns_{k}": v for k, v in row.baseline_ns.items()})
        rows.append(row)
    return rows


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's per-figure summary bar)."""
    vals = [v for v in values if v is not None]
    if not vals:
        return math.nan
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def render_speedups(rows: list[SpeedupRow], title: str) -> str:
    """Paper-style speedup table with a geomean row."""
    if not rows:
        return title + "\n(no rows)\n"
    libs = list(rows[0].baseline_ns)
    widths = [max(10, len(n) + 2) for n in libs]
    out = [title, "(speedup of RLIBM-32 over each library; >1 means "
                  "RLIBM-32 is faster)"]
    header = f"{'function':10s}" + "".join(
        f"{n:>{w}s}" for n, w in zip(libs, widths))
    out.append(header)
    out.append("-" * len(header))
    for row in rows:
        cells = []
        for name, w in zip(libs, widths):
            s = row.speedup(name)
            cells.append(f"{'N/A' if s is None else f'{s:.2f}x':>{w}s}")
        out.append(f"{row.function:10s}" + "".join(cells))
    cells = []
    for name, w in zip(libs, widths):
        g = geomean([r.speedup(name) for r in rows
                     if r.speedup(name) is not None])
        cells.append(f"{'N/A' if math.isnan(g) else f'{g:.2f}x':>{w}s}")
    out.append("-" * len(header))
    out.append(f"{'geomean':10s}" + "".join(cells))
    return "\n".join(out) + "\n"
