"""The correctly rounded oracle (MPFR substitute, built on mpmath).

The paper computes the oracle result of each ``f(x)`` with MPFR at up to
400 bits of precision.  We use mpmath — the Python analogue of MPFR — and
make the result *trustworthy* with a Ziv-style escalation loop:

1. evaluate ``f(x)`` at working precision ``p``;
2. widen the result to a rational bracketing interval ``[lo, hi]`` with a
   generous error allowance (mpmath functions are accurate to within a
   couple of ulps at the working precision);
3. if both endpoints round to the same value in the requested target
   format, that value is the correctly rounded result;
4. otherwise double ``p`` and retry.

Inputs whose exact result is itself rational (the genuinely hard ties of
the table maker's dilemma, e.g. ``exp2`` of an integer or ``sinpi`` of a
half-integer) are answered exactly by the per-function ``exact_hook``,
so the loop always terminates.

The oracle caches aggressively: the generator asks for the same inputs
many times while deducing reduced intervals.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Protocol

import mpmath

from repro.fp.bits import fraction_to_double
from repro.fp.formats import FLOAT64
from repro.oracle.functions import FunctionDef, get_function

__all__ = ["Oracle", "OracleError", "default_oracle", "mpf_to_fraction"]

_START_PREC = 128
_MAX_PREC = 8192
#: Error allowance in ulps-at-working-precision for one mpmath call.
_SLOP_BITS = 6


class OracleError(RuntimeError):
    """Raised when the oracle cannot certify a correctly rounded result."""


class _RoundsFractions(Protocol):
    """Any representation with ``from_fraction``: FloatFormat or PositFormat."""

    def from_fraction(self, q: Fraction) -> int: ...


def mpf_to_fraction(v: mpmath.mpf) -> Fraction:
    """Exact rational value of a finite mpf."""
    if not mpmath.isfinite(v):
        raise ValueError(f"not finite: {v!r}")
    sign, man, exp, _bc = v._mpf_
    if man == 0:
        return Fraction(0)
    q = Fraction(man) * Fraction(2) ** exp
    return -q if sign else q


class Oracle:
    """Correctly rounded evaluation of the registered elementary functions."""

    def __init__(self, start_prec: int = _START_PREC, max_prec: int = _MAX_PREC,
                 cache: bool = True):
        self.start_prec = start_prec
        self.max_prec = max_prec
        #: set False for timing runs (a memoized oracle would otherwise
        #: time as dictionary lookups instead of Ziv evaluation)
        self.cache = cache
        self._bits_cache: dict[tuple[str, float, int], int] = {}
        self._double_cache: dict[tuple[str, float], float] = {}

    # ------------------------------------------------------------------
    # Core bracketing primitive
    # ------------------------------------------------------------------
    def bracket(self, fn: FunctionDef, x: float, prec: int) -> tuple[Fraction, Fraction, bool]:
        """Rational interval containing the exact f(x); flag = exact.

        ``x`` must be finite and in the function's domain (domain
        boundaries such as ``ln(0)`` are limit cases handled by callers).
        """
        exact = fn.exact_hook(Fraction(x))
        if exact is not None:
            return exact, exact, True
        with mpmath.workprec(prec):
            v = fn.mp_call(mpmath.mpf(x))
        if mpmath.isfinite(v) and v != 0:
            # exp of a posit-scale input can have a binary exponent of
            # ~1e30; rationalizing that would build an astronomically
            # large integer.  Any result beyond 2**4200 rounds to the
            # top of every supported format (inf / maxpos) and anything
            # below 2**-4200 to the bottom, so clamp to a representative
            # bracket instead.
            sign_bit, _man, v_exp, v_bc = v._mpf_
            scale = v_exp + v_bc
            if scale > 4200:
                hi = Fraction(2) ** 4300
                lo = Fraction(2) ** 4200
                return (-hi, -lo, False) if sign_bit else (lo, hi, False)
            if scale < -4200:
                hi = Fraction(1, 2 ** 4200)
                lo = Fraction(1, 2 ** 4300)
                return (-hi, -lo, False) if sign_bit else (lo, hi, False)
        q = mpf_to_fraction(v)
        if q == 0:
            # None of the registered functions returns an inexact zero at
            # mpmath precision (zeros are caught by the exact hooks), but
            # guard against it: a zero with no exact hook is uncertifiable
            # at this precision.
            return Fraction(-1), Fraction(1), False
        # q = m * 2**e with 2**(e') <= |q| < 2**(e'+1); one ulp at
        # precision prec is 2**(e'+1-prec); allow 2**_SLOP_BITS of them.
        mag = abs(q)
        e = mag.numerator.bit_length() - mag.denominator.bit_length()
        eps = Fraction(2) ** (e + 1 - prec + _SLOP_BITS)
        return q - eps, q + eps, False

    # ------------------------------------------------------------------
    # Rounding entry points
    # ------------------------------------------------------------------
    def round_to_bits(self, fn_name: str, x: float, fmt: _RoundsFractions) -> int:
        """Correctly rounded f(x) as a bit pattern of ``fmt``.

        ``x`` must be finite and inside the function domain; limit cases
        (NaN, infinities, ``ln`` of non-positives) belong to the
        special-case layer of each library function, not the oracle.
        """
        key = (fn_name, x, id(fmt))
        if self.cache:
            hit = self._bits_cache.get(key)
            if hit is not None:
                return hit
        fn = get_function(fn_name)
        if not (math.isfinite(x) and fn.in_domain(x)):
            raise ValueError(f"{fn_name}({x!r}) is a limit/special case, "
                             "not an oracle query")
        prec = self.start_prec
        while prec <= self.max_prec:
            lo, hi, exact = self.bracket(fn, x, prec)
            lo_bits = fmt.from_fraction(lo)
            if exact:
                self._bits_cache[key] = lo_bits
                return lo_bits
            hi_bits = fmt.from_fraction(hi)
            if lo_bits == hi_bits:
                self._bits_cache[key] = lo_bits
                return lo_bits
            prec *= 2
        raise OracleError(
            f"could not certify {fn_name}({x!r}) at {self.max_prec} bits")

    def round_to_double(self, fn_name: str, x: float) -> float:
        """Correctly rounded f(x) in H = binary64.

        This is the paper's ``RN_H(f_i(r))`` used as the initial guess of
        the reduced interval (Algorithm 2, line 7).
        """
        key = (fn_name, x)
        if self.cache:
            hit = self._double_cache.get(key)
            if hit is not None:
                return hit
        bits = self.round_to_bits(fn_name, x, FLOAT64)
        val = FLOAT64.to_double(bits)
        self._double_cache[key] = val
        return val

    def real_value(self, fn_name: str, x: float, prec: int = 256) -> mpmath.mpf:
        """Plain high-precision value (for mini-max baselines and plots)."""
        fn = get_function(fn_name)
        with mpmath.workprec(prec):
            return fn.mp_call(mpmath.mpf(x))

    def clear_cache(self) -> None:
        """Drop the memoized results."""
        self._bits_cache.clear()
        self._double_cache.clear()


#: Shared module-level oracle; the caches make sharing worthwhile.
default_oracle = Oracle()
