"""The correctly rounded oracle (MPFR substitute, built on mpmath).

The paper computes the oracle result of each ``f(x)`` with MPFR at up to
400 bits of precision.  We use mpmath — the Python analogue of MPFR — and
make the result *trustworthy* with a Ziv-style escalation loop:

1. evaluate ``f(x)`` at working precision ``p``;
2. widen the result to a rational bracketing interval ``[lo, hi]`` with a
   generous error allowance (mpmath functions are accurate to within a
   couple of ulps at the working precision);
3. if both endpoints round to the same value in the requested target
   format, that value is the correctly rounded result;
4. otherwise double ``p`` and retry.

Inputs whose exact result is itself rational (the genuinely hard ties of
the table maker's dilemma, e.g. ``exp2`` of an integer or ``sinpi`` of a
half-integer) are answered exactly by the per-function ``exact_hook``,
so the loop always terminates.

Step 3 has an integer *fast-certification* path: instead of building the
exact rational bracket and rounding both endpoints (``Fraction``
arithmetic over ~128-bit integers), the mantissa of the mpmath result is
compared — in pure integer arithmetic — against the distance to the
nearest rounding boundary of the target format.  When the error bound
clears that distance with a 4x margin the rounded result is certified
directly from the mantissa bits.  Whenever the cheap path cannot *prove*
the rounding (boundary too close, subnormal/overflow edge, posit
target), it falls back to the exact ``Fraction`` bracket at the *same*
precision, so the escalation trajectory — and every certified bit — is
identical to the slow path.

The oracle caches aggressively: the generator asks for the same inputs
many times while deducing reduced intervals.  In-memory memoization is
per-oracle; with a :class:`repro.cache.SegmentStore` attached (or
``REPRO_CACHE_DIR`` set) certified bits also persist on disk, shared
across runs and across worker processes.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Protocol

import mpmath

from repro.cache import BucketSpec, SegmentStore, active_store
from repro.fp.bits import double_to_bits, fraction_to_double
from repro.fp.formats import FLOAT64, FloatFormat
from repro.oracle.functions import FunctionDef, get_function
from repro.posit.format import PositFormat

__all__ = ["Oracle", "OracleError", "ORACLE_VERSION", "default_oracle",
           "mpf_to_fraction"]

_START_PREC = 128
_MAX_PREC = 8192
#: Error allowance in ulps-at-working-precision for one mpmath call.
_SLOP_BITS = 6
#: Consecutive escalated certifications before the Ziv start precision of
#: a function is raised (adaptive start; reset by ``clear_cache``).
_ADAPT_AFTER = 16

#: Logical version of the oracle result semantics.  Bump when a function
#: definition or the certification contract changes: old on-disk cache
#: segments then become stale and ``cache gc`` removes them.
ORACLE_VERSION = 1


class OracleError(RuntimeError):
    """Raised when the oracle cannot certify a correctly rounded result."""


class _RoundsFractions(Protocol):
    """Any representation with ``from_fraction``: FloatFormat or PositFormat."""

    def from_fraction(self, q: Fraction) -> int: ...


def mpf_to_fraction(v: mpmath.mpf) -> Fraction:
    """Exact rational value of a finite mpf."""
    if not mpmath.isfinite(v):
        raise ValueError(f"not finite: {v!r}")
    sign, man, exp, _bc = v._mpf_
    if man == 0:
        return Fraction(0)
    q = Fraction(man) * Fraction(2) ** exp
    return -q if sign else q


def _fast_round_bits(sign: int, man: int, exp: int, bc: int, prec: int,
                     mbits: int, emin: int, emax: int, bias: int,
                     sign_mask: int, mant_mask: int) -> int | None:
    """Certify RN_T of ``±man * 2**exp`` by integer midpoint distance.

    ``man`` is the (normalized, ``bc = man.bit_length()``) mantissa of an
    mpmath result whose true value lies within ``2**(e+1-prec+_SLOP_BITS)``
    of it.  Working in units of ``2**exp``: the target's rounding
    boundaries (value midpoints) are spaced ``2**u`` apart inside the
    binade, so if the error interval stays inside the binade and clears
    the nearest boundary by a 4x margin, every value in it rounds to the
    same target pattern — returned here.  ``None`` means "cannot prove";
    the caller falls back to the exact bracket at the same precision.
    """
    e = exp + bc - 1                      # 2**e <= |v| < 2**(e+1)
    if e < emin or e >= emax:
        return None                       # subnormal / overflow edge
    u = bc - 1 - mbits                    # target ulp in units of 2**exp
    if u < 4:
        return None                       # mantissa too short to certify
    eu = bc - prec + _SLOP_BITS           # log2 of the error, same units
    margin = (1 << (eu + 2)) if eu > 0 else 4
    half = 1 << (u - 1)
    if margin >= half:
        return None
    # the whole error interval must stay inside this binade (midpoint
    # spacing halves below it, and the top is a representable boundary)
    if man - (1 << (bc - 1)) < margin or (1 << bc) - man < margin:
        return None
    t = man & ((1 << u) - 1)
    dist = t - half
    if dist < 0:
        dist = -dist
    if dist < margin:
        return None                       # too close to a boundary
    head = man >> u
    if t > half:
        head += 1
        if head == (1 << (mbits + 1)):    # carried into the next binade
            head >>= 1
            e += 1
            if e > emax:                  # pragma: no cover - guarded above
                return None
    bits = ((e + bias) << mbits) | (head & mant_mask)
    return (bits | sign_mask) if sign else bits


class Oracle:
    """Correctly rounded evaluation of the registered elementary functions."""

    def __init__(self, start_prec: int = _START_PREC, max_prec: int = _MAX_PREC,
                 cache: bool = True, store: SegmentStore | None = None,
                 fast_certify: bool = True, adaptive_prec: bool = True):
        self.start_prec = start_prec
        self.max_prec = max_prec
        #: set False for timing runs (a memoized oracle would otherwise
        #: time as dictionary lookups instead of Ziv evaluation)
        self.cache = cache
        #: explicit on-disk store; None falls back to the process-wide
        #: store of :mod:`repro.cache` (itself None unless configured)
        self.store = store
        #: integer fast-certification (bit-identical; off re-times the
        #: pure-Fraction baseline)
        self.fast_certify = fast_certify
        #: raise a function's Ziv start precision after repeated
        #: escalations (results are precision-independent; this only
        #: skips doomed low-precision evaluations)
        self.adaptive_prec = adaptive_prec
        self._bits_cache: dict[tuple[str, float, int], int] = {}
        self._double_cache: dict[tuple[str, float], float] = {}
        self._prec_start: dict[str, int] = {}
        self._prec_streak: dict[str, int] = {}
        self._fmt_params: dict[int, tuple | None] = {}
        self._bucket_specs: dict[tuple[str, int], BucketSpec | None] = {}
        self._info = {"calls": 0, "mem_hits": 0, "certified": 0,
                      "fast_certified": 0, "escalated": 0, "exact_hook": 0,
                      "store_hits": 0, "store_puts": 0}

    # ------------------------------------------------------------------
    # Core bracketing primitive
    # ------------------------------------------------------------------
    def bracket(self, fn: FunctionDef, x: float, prec: int) -> tuple[Fraction, Fraction, bool]:
        """Rational interval containing the exact f(x); flag = exact.

        ``x`` must be finite and in the function's domain (domain
        boundaries such as ``ln(0)`` are limit cases handled by callers).
        """
        exact = fn.exact_hook(Fraction(x))
        if exact is not None:
            return exact, exact, True
        with mpmath.workprec(prec):
            v = fn.mp_call(mpmath.mpf(x))
        lo, hi = self._bracket_from_mpf(v, prec)
        return lo, hi, False

    def _bracket_from_mpf(self, v: mpmath.mpf,
                          prec: int) -> tuple[Fraction, Fraction]:
        """Widen an inexact mpf to its rational error bracket."""
        if mpmath.isfinite(v) and v != 0:
            # exp of a posit-scale input can have a binary exponent of
            # ~1e30; rationalizing that would build an astronomically
            # large integer.  Any result beyond 2**4200 rounds to the
            # top of every supported format (inf / maxpos) and anything
            # below 2**-4200 to the bottom, so clamp to a representative
            # bracket instead.
            sign_bit, _man, v_exp, v_bc = v._mpf_
            scale = v_exp + v_bc
            if scale > 4200:
                hi = Fraction(2) ** 4300
                lo = Fraction(2) ** 4200
                return (-hi, -lo) if sign_bit else (lo, hi)
            if scale < -4200:
                hi = Fraction(1, 2 ** 4200)
                lo = Fraction(1, 2 ** 4300)
                return (-hi, -lo) if sign_bit else (lo, hi)
        q = mpf_to_fraction(v)
        if q == 0:
            # None of the registered functions returns an inexact zero at
            # mpmath precision (zeros are caught by the exact hooks), but
            # guard against it: a zero with no exact hook is uncertifiable
            # at this precision.
            return Fraction(-1), Fraction(1)
        # q = m * 2**e with 2**(e') <= |q| < 2**(e'+1); one ulp at
        # precision prec is 2**(e'+1-prec); allow 2**_SLOP_BITS of them.
        mag = abs(q)
        e = mag.numerator.bit_length() - mag.denominator.bit_length()
        eps = Fraction(2) ** (e + 1 - prec + _SLOP_BITS)
        return q - eps, q + eps

    # ------------------------------------------------------------------
    # Rounding entry points
    # ------------------------------------------------------------------
    def round_to_bits(self, fn_name: str, x: float, fmt: _RoundsFractions) -> int:
        """Correctly rounded f(x) as a bit pattern of ``fmt``.

        ``x`` must be finite and inside the function domain; limit cases
        (NaN, infinities, ``ln`` of non-positives) belong to the
        special-case layer of each library function, not the oracle.
        """
        key = (fn_name, x, id(fmt))
        self._info["calls"] += 1
        if self.cache:
            hit = self._bits_cache.get(key)
            if hit is not None:
                self._info["mem_hits"] += 1
                return hit
        fn = get_function(fn_name)
        if not (math.isfinite(x) and fn.in_domain(x)):
            raise ValueError(f"{fn_name}({x!r}) is a limit/special case, "
                             "not an oracle query")
        store = self.store if self.store is not None else active_store()
        spec = skey = None
        if store is not None:
            spec = self._bucket_spec(fn_name, fmt)
            if spec is not None:
                skey = double_to_bits(x)
                got = store.get(spec, skey)
                if got is not None:
                    self._info["store_hits"] += 1
                    bits = got[0]
                    if self.cache:
                        self._bits_cache[key] = bits
                    return bits
        bits = self._certify(fn, fn_name, x, fmt)
        if self.cache:
            self._bits_cache[key] = bits
        if spec is not None and store is not None:
            store.put(spec, skey, (bits,))
            self._info["store_puts"] += 1
        return bits

    def _certify(self, fn: FunctionDef, fn_name: str, x: float,
                 fmt: _RoundsFractions) -> int:
        """The Ziv escalation loop (exact hook, then certify-or-double)."""
        exact = fn.exact_hook(Fraction(x))
        if exact is not None:
            self._info["exact_hook"] += 1
            return fmt.from_fraction(exact)
        start = self.start_prec
        if self.adaptive_prec:
            start = self._prec_start.get(fn_name, start)
        params = None
        if self.fast_certify:
            params = self._fast_params(fmt)
        prec = start
        while prec <= self.max_prec:
            with mpmath.workprec(prec):
                v = fn.mp_call(mpmath.mpf(x))
            if params is not None:
                sign, man, exp, bc = v._mpf_
                if man > 0:
                    bits = _fast_round_bits(sign, man, exp, bc, prec, *params)
                    if bits is not None:
                        self._info["fast_certified"] += 1
                        self._note_certified(fn_name, start, prec)
                        return bits
            lo, hi = self._bracket_from_mpf(v, prec)
            lo_bits = fmt.from_fraction(lo)
            if lo_bits == fmt.from_fraction(hi):
                self._note_certified(fn_name, start, prec)
                return lo_bits
            prec *= 2
        raise OracleError(
            f"could not certify {fn_name}({x!r}) at {self.max_prec} bits")

    def _note_certified(self, fn_name: str, start: int, prec: int) -> None:
        self._info["certified"] += 1
        if prec == start:
            self._prec_streak[fn_name] = 0
            return
        self._info["escalated"] += 1
        if not self.adaptive_prec:
            return
        streak = self._prec_streak.get(fn_name, 0) + 1
        if streak >= _ADAPT_AFTER:
            self._prec_start[fn_name] = min(start * 2, self.max_prec)
            streak = 0
        self._prec_streak[fn_name] = streak

    def _fast_params(self, fmt: _RoundsFractions) -> tuple | None:
        """Precomputed format constants for the integer fast path, or
        None for targets it does not cover (posits, custom formats)."""
        params = self._fmt_params.get(id(fmt))
        if params is None and id(fmt) not in self._fmt_params:
            if type(fmt) is FloatFormat:
                params = (fmt.mbits, fmt.emin, fmt.emax, fmt.bias,
                          fmt.sign_mask, fmt.mant_mask)
            self._fmt_params[id(fmt)] = params
        return params

    def _bucket_spec(self, fn_name: str, fmt: _RoundsFractions) -> BucketSpec | None:
        """Disk-cache bucket for (fn, fmt); None for unnamable targets."""
        bkey = (fn_name, id(fmt))
        spec = self._bucket_specs.get(bkey)
        if spec is None and bkey not in self._bucket_specs:
            if isinstance(fmt, (FloatFormat, PositFormat)):
                spec = BucketSpec("oracle", fn_name, str(fmt),
                                  ORACLE_VERSION, 1)
            self._bucket_specs[bkey] = spec
        return spec

    def round_to_double(self, fn_name: str, x: float) -> float:
        """Correctly rounded f(x) in H = binary64.

        This is the paper's ``RN_H(f_i(r))`` used as the initial guess of
        the reduced interval (Algorithm 2, line 7).
        """
        key = (fn_name, x)
        if self.cache:
            hit = self._double_cache.get(key)
            if hit is not None:
                return hit
        bits = self.round_to_bits(fn_name, x, FLOAT64)
        val = FLOAT64.to_double(bits)
        self._double_cache[key] = val
        return val

    def real_value(self, fn_name: str, x: float, prec: int = 256) -> mpmath.mpf:
        """Plain high-precision value (for mini-max baselines and plots)."""
        fn = get_function(fn_name)
        with mpmath.workprec(prec):
            return fn.mp_call(mpmath.mpf(x))

    def cache_info(self) -> dict[str, object]:
        """Memo sizes, certification counters, and Ziv precision state."""
        return {
            "bits_entries": len(self._bits_cache),
            "double_entries": len(self._double_cache),
            "start_prec": dict(sorted(self._prec_start.items())),
            "store": "attached" if self.store is not None else (
                "process" if active_store() is not None else "none"),
            **self._info,
        }

    def clear_cache(self) -> None:
        """Drop the memoized results *and* the Ziv start-precision
        escalation state, so a cleared oracle re-times exactly like a
        fresh one (benchmark passes rely on this)."""
        self._bits_cache.clear()
        self._double_cache.clear()
        self._prec_start.clear()
        self._prec_streak.clear()
        for k in self._info:
            self._info[k] = 0


#: Shared module-level oracle; the caches make sharing worthwhile.
default_oracle = Oracle()
