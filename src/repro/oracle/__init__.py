"""Correctly rounded oracle (mpmath-backed MPFR substitute)."""

from __future__ import annotations

from repro.oracle.functions import FUNCTIONS, FunctionDef, get_function
from repro.oracle.mpmath_oracle import Oracle, OracleError, default_oracle, mpf_to_fraction

__all__ = [
    "FUNCTIONS", "FunctionDef", "get_function",
    "Oracle", "OracleError", "default_oracle", "mpf_to_fraction",
]
