"""Definitions of the elementary functions the library approximates.

RLIBM-32 ships ten correctly rounded float functions — ln, log2, log10,
exp, exp2, exp10, sinh, cosh, sinpi, cospi — and eight posit32 functions
(the same list minus sinpi/cospi).  Each :class:`FunctionDef` bundles
everything the pipeline needs to know about a function:

* how to evaluate it to arbitrary precision with mpmath (the oracle),
* an *exact hook* returning the exact rational value at inputs where the
  result is itself rational (these are precisely the potential hard ties
  of the table maker's dilemma — e.g. ``sinpi`` at half-integers, ``exp2``
  at integers — so the Ziv escalation loop always terminates),
* IEEE limit/domain conventions for non-finite or out-of-domain inputs,
* the input domain over which a finite float input produces a finite,
  non-trivial result (used by the samplers and the special-case layers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

import mpmath

__all__ = ["FunctionDef", "FUNCTIONS", "get_function"]

# Exactly representable powers of ten (10**k is dyadic for k >= 0 and fits
# a double's 53-bit significand up to 10**22).
_EXACT_POW10 = {Fraction(10) ** k: k for k in range(0, 23)}


def _exact_ln(x: Fraction) -> Fraction | None:
    return Fraction(0) if x == 1 else None


def _exact_log2(x: Fraction) -> Fraction | None:
    # Dyadic x is a power of two iff its numerator or denominator is 1
    # and the other is a power of two.
    if x <= 0:
        return None
    n, d = x.numerator, x.denominator
    if d == 1 and n & (n - 1) == 0:
        return Fraction(n.bit_length() - 1)
    if n == 1 and d & (d - 1) == 0:
        return Fraction(-(d.bit_length() - 1))
    return None


def _exact_log10(x: Fraction) -> Fraction | None:
    k = _EXACT_POW10.get(x)
    return None if k is None else Fraction(k)


def _exact_exp(x: Fraction) -> Fraction | None:
    return Fraction(1) if x == 0 else None


def _exact_exp2(x: Fraction) -> Fraction | None:
    if x.denominator == 1:
        return Fraction(2) ** x.numerator
    return None


def _exact_exp10(x: Fraction) -> Fraction | None:
    if x.denominator == 1:
        return Fraction(10) ** x.numerator
    return None


def _exact_sinh(x: Fraction) -> Fraction | None:
    return Fraction(0) if x == 0 else None


def _exact_cosh(x: Fraction) -> Fraction | None:
    return Fraction(1) if x == 0 else None


def _exact_sinpi(x: Fraction) -> Fraction | None:
    # Niven: for dyadic rational x the only rational values of sin(pi x)
    # occur at integers (0) and half-integers (+/-1).
    if x.denominator == 1:
        return Fraction(0)
    if x.denominator == 2:
        # x = k + 1/2 with k = (numerator-1)/2 ; sinpi = (-1)**k
        k = (x.numerator - 1) // 2
        return Fraction(1) if k % 2 == 0 else Fraction(-1)
    return None


def _exact_cospi(x: Fraction) -> Fraction | None:
    if x.denominator == 1:
        return Fraction(1) if x.numerator % 2 == 0 else Fraction(-1)
    if x.denominator == 2:
        return Fraction(0)
    return None


def _limits_ln(x: float) -> float | None:
    if math.isnan(x):
        return math.nan
    if x == 0.0:
        return -math.inf
    if x < 0:
        return math.nan
    if x == math.inf:
        return math.inf
    return None


def _limits_exp_family(x: float) -> float | None:
    if math.isnan(x):
        return math.nan
    if x == math.inf:
        return math.inf
    if x == -math.inf:
        return 0.0
    return None


def _limits_sinh(x: float) -> float | None:
    if math.isnan(x):
        return math.nan
    if math.isinf(x):
        return x
    return None


def _limits_cosh(x: float) -> float | None:
    if math.isnan(x):
        return math.nan
    if math.isinf(x):
        return math.inf
    return None


def _limits_sincospi(x: float) -> float | None:
    if math.isnan(x) or math.isinf(x):
        return math.nan
    return None


@dataclass(frozen=True)
class FunctionDef:
    """Everything the pipeline needs to know about one elementary function."""

    name: str
    #: Evaluate at an mpf under the *current* mpmath working precision.
    mp_call: Callable[[mpmath.mpf], mpmath.mpf]
    #: Exact rational result when one exists (the potential hard ties).
    exact_hook: Callable[[Fraction], Fraction | None]
    #: IEEE convention for NaN/inf/out-of-domain double inputs, else None.
    limit_cases: Callable[[float], float | None]
    #: Closed domain of finite inputs the oracle accepts.
    domain_lo: float = -math.inf
    domain_hi: float = math.inf
    #: True if f(-x) == -f(x); True-as-even handled via odd=False.
    odd: bool = False
    even: bool = False
    #: Human-oriented note about the range reduction family.
    notes: str = ""

    def in_domain(self, x: float) -> bool:
        """True when a finite ``x`` has a finite real function value."""
        return self.domain_lo <= x <= self.domain_hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


FUNCTIONS: dict[str, FunctionDef] = {}


def _register(fd: FunctionDef) -> FunctionDef:
    FUNCTIONS[fd.name] = fd
    return fd


LN = _register(FunctionDef(
    "ln", mpmath.ln, _exact_ln, _limits_ln,
    domain_lo=0.0, notes="table-driven log reduction (Tang)"))
LOG2 = _register(FunctionDef(
    "log2", lambda v: mpmath.log(v, 2), _exact_log2, _limits_ln,
    domain_lo=0.0, notes="table-driven log reduction (Tang)"))
LOG10 = _register(FunctionDef(
    "log10", mpmath.log10, _exact_log10, _limits_ln,
    domain_lo=0.0, notes="table-driven log reduction (Tang)"))
EXP = _register(FunctionDef(
    "exp", mpmath.exp, _exact_exp, _limits_exp_family,
    notes="2**(k/64) table reduction"))
EXP2 = _register(FunctionDef(
    "exp2", lambda v: mpmath.power(2, v), _exact_exp2, _limits_exp_family,
    notes="2**(k/64) table reduction"))
EXP10 = _register(FunctionDef(
    "exp10", lambda v: mpmath.power(10, v), _exact_exp10, _limits_exp_family,
    notes="2**(k/64) table reduction"))
SINH = _register(FunctionDef(
    "sinh", mpmath.sinh, _exact_sinh, _limits_sinh, odd=True,
    notes="sinh/cosh(N/64) tables; two reduced functions"))
COSH = _register(FunctionDef(
    "cosh", mpmath.cosh, _exact_cosh, _limits_cosh, even=True,
    notes="sinh/cosh(N/64) tables; two reduced functions"))
SINPI = _register(FunctionDef(
    "sinpi", mpmath.sinpi, _exact_sinpi, _limits_sincospi, odd=True,
    notes="periodicity + N/512 tables (paper section 2)"))
COSPI = _register(FunctionDef(
    "cospi", mpmath.cospi, _exact_cospi, _limits_sincospi, even=True,
    notes="monotonic N'/512 - R reduction (paper section 5)"))


# ----------------------------------------------------------------------
# Reduced elementary functions used by the log range reduction:
# after x = 2**e * F * (1 + r), the polynomial target is log_b(1 + r).
# mpmath.log1p keeps full accuracy for tiny r.
# ----------------------------------------------------------------------

def _exact_log1p(x: Fraction) -> Fraction | None:
    return Fraction(0) if x == 0 else None


def _exact_log2_1p(x: Fraction) -> Fraction | None:
    return _exact_log2(1 + x)


def _exact_log10_1p(x: Fraction) -> Fraction | None:
    return _exact_log10(1 + x)


_LN10 = None  # computed lazily inside mp_call at working precision

LOG1P = _register(FunctionDef(
    "log1p", mpmath.log1p, _exact_log1p, _limits_ln,
    domain_lo=-1.0, notes="reduced function of ln"))
LOG2_1P = _register(FunctionDef(
    "log2_1p", lambda v: mpmath.log1p(v) / mpmath.ln(2), _exact_log2_1p,
    _limits_ln, domain_lo=-1.0, notes="reduced function of log2"))
LOG10_1P = _register(FunctionDef(
    "log10_1p", lambda v: mpmath.log1p(v) / mpmath.ln(10), _exact_log10_1p,
    _limits_ln, domain_lo=-1.0, notes="reduced function of log10"))


def get_function(name: str) -> FunctionDef:
    """Look up a registered elementary function by name."""
    try:
        return FUNCTIONS[name]
    except KeyError:
        raise KeyError(f"unknown elementary function {name!r}; "
                       f"known: {sorted(FUNCTIONS)}") from None
