"""Resumable JSON checkpoints for long generation runs.

A full 32-bit library generation is minutes-to-hours of oracle and LP
work; a killed run should not forfeit the functions that already
finished.  A :class:`Checkpoint` is a directory of one JSON file per
completed shard key (for :func:`repro.libm.genlib.generate_library`,
per function name) plus a ``manifest.json`` that pins the run
configuration.

Safety properties:

* **Atomic saves** — payloads are written to a temp file and
  ``os.replace``-d into place, so a kill mid-write leaves either the
  old state or the new, never a torn file; :meth:`load` additionally
  treats unreadable/corrupt JSON as absent (the shard just re-runs).
* **Configuration pinning** — resuming with a different target, seed,
  or budget would silently mix incompatible shards into one library;
  a manifest mismatch raises :class:`CheckpointMismatch` instead.

Checkpoint payloads are JSON (not pickle) on purpose: they survive
refactors of internal classes, and a shard result is inspectable with
any text editor.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Iterator

__all__ = ["Checkpoint", "CheckpointMismatch"]

SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"


class CheckpointMismatch(RuntimeError):
    """Checkpoint directory belongs to a run with different settings."""


class Checkpoint:
    """A directory of per-key JSON shard results, atomically written."""

    def __init__(self, root: str | os.PathLike,
                 manifest: dict[str, Any] | None = None):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if manifest is not None:
            want = {"schema": SCHEMA_VERSION, **manifest}
            have = self._read_json(self.root / _MANIFEST)
            if have is None:
                self._write_json(self.root / _MANIFEST, want)
            elif have != want:
                raise CheckpointMismatch(
                    f"checkpoint {self.root} was written by a different "
                    f"run configuration:\n  found:    {have}\n"
                    f"  expected: {want}\n"
                    "delete the directory (or point --checkpoint "
                    "elsewhere) to start fresh")

    # ------------------------------------------------------------------
    @staticmethod
    def _read_json(path: pathlib.Path) -> dict[str, Any] | None:
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _write_json(self, path: pathlib.Path, payload: dict[str, Any]) -> None:
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def _path(self, key: str) -> pathlib.Path:
        if not key or any(c in key for c in "/\\") or key.startswith("."):
            raise ValueError(f"bad checkpoint key {key!r}")
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def save(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically record one completed shard."""
        self._write_json(self._path(key), payload)

    def load(self, key: str) -> dict[str, Any] | None:
        """The saved payload, or None if absent or torn."""
        return self._read_json(self._path(key))

    def done(self, key: str) -> bool:
        return self.load(key) is not None

    def keys(self) -> Iterator[str]:
        """Keys with a (readable) saved payload, sorted."""
        for path in sorted(self.root.glob("*.json")):
            if path.name == _MANIFEST:
                continue
            if self._read_json(path) is not None:
                yield path.stem

    def clear(self) -> None:
        """Drop every shard result and the manifest."""
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
