"""Parallel sharded execution for generation, validation, and audits.

The paper validates against the full 2**32 input space; our sampled
pure-Python pipeline is bounded by how many oracle comparisons one core
can afford.  This package scales the three hot paths — library
generation (:func:`repro.libm.genlib.generate_library`, one shard per
function), oracle validation (:func:`repro.core.validate.validate`,
chunked input pools), and the Table 1/2 audits
(:func:`repro.eval.correctness.audit_function`) — across a process pool
behind a ``workers=N | "auto"`` knob that defaults to serial.

The non-negotiable contract is *bit-identical results*: sharding is a
deterministic exact-cover partition with per-shard seeds
(:mod:`repro.parallel.shards`), merges preserve serial order, worker
failures re-raise with the original traceback
(:mod:`repro.parallel.executor`), and killed runs resume from atomic
JSON checkpoints (:mod:`repro.parallel.checkpoint`).  The differential
suite in ``tests/test_parallel_equivalence.py`` holds the parallel
paths byte-for-byte equal to serial.
"""

from __future__ import annotations

from repro.parallel.checkpoint import Checkpoint, CheckpointMismatch
from repro.parallel.executor import ShardError, run_tasks
from repro.parallel.shards import (Shard, parse_workers, plan_chunks,
                                   plan_shards, resolve_workers, shard_seed)

__all__ = [
    "Checkpoint", "CheckpointMismatch", "ShardError", "run_tasks",
    "Shard", "parse_workers", "plan_chunks", "plan_shards",
    "resolve_workers", "shard_seed",
]
