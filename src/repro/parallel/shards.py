"""Deterministic work sharding for the process-pool executor.

Parallelism must never change results: the sampled pipeline's claim to
reproduce the paper's tables rests on every run being bit-identical for
a given seed (DESIGN.md).  Sharding therefore has one contract:

* :func:`plan_chunks` partitions ``range(n)`` into contiguous,
  *ordered*, non-empty ``[start, stop)`` chunks that cover every index
  exactly once — so concatenating per-chunk results in chunk order
  reproduces the serial iteration order exactly;
* :func:`shard_seed` derives a pairwise-distinct, platform-independent
  RNG seed per shard from the run's base seed (splitmix64-style
  mixing), so a shard that needs its own ``random.Random`` never shares
  a stream with a sibling and never consumes draws from the parent's
  stream (which would make results depend on shard count).

Both are pure functions of their arguments; the property tests in
``tests/test_properties.py`` pin exact-cover and seed-distinctness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Shard", "resolve_workers", "parse_workers", "plan_chunks",
           "plan_shards", "shard_seed"]

#: Chunks per worker when no explicit chunk size is given: small enough
#: to amortize per-task pickling, large enough to balance uneven shards.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int | str | None) -> int:
    """Normalize the ``workers`` knob to a concrete worker count.

    ``None``/``0``/``1`` mean serial; ``"auto"`` means one worker per
    available CPU; any other int is used as given.
    """
    if workers is None:
        return 1
    if workers == "auto":
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:
            return max(1, os.cpu_count() or 1)
    n = int(workers)
    if n < 0:
        raise ValueError(f"workers must be >= 0, got {n}")
    return max(1, n)


def parse_workers(text: str | None) -> int | str | None:
    """Parse a ``--workers`` CLI value: ``'auto'`` or an integer."""
    if text is None or text == "auto":
        return text
    return int(text)


@dataclass(frozen=True)
class Shard:
    """One unit of parallel work over ``items[start:stop]``."""

    index: int
    start: int
    stop: int
    #: Seed for any RNG the shard needs; pairwise distinct across a plan.
    seed: int

    def __len__(self) -> int:
        return self.stop - self.start


def plan_chunks(
    n: int,
    workers: int,
    chunk_size: int | None = None,
) -> list[tuple[int, int]]:
    """Ordered ``[start, stop)`` chunks covering ``range(n)`` exactly once.

    With no explicit ``chunk_size`` the plan aims for
    ``workers * _CHUNKS_PER_WORKER`` balanced chunks (never more than
    ``n``); every chunk is non-empty and sizes differ by at most one, so
    the slowest shard bounds wall-clock tightly.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return []
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        return [(a, min(a + chunk_size, n)) for a in range(0, n, chunk_size)]
    n_chunks = min(n, max(1, workers) * _CHUNKS_PER_WORKER)
    base, extra = divmod(n, n_chunks)
    bounds = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def shard_seed(base_seed: int, index: int) -> int:
    """Distinct 64-bit RNG seed for shard ``index`` of a ``base_seed`` run.

    splitmix64's finalizer on ``base_seed * K + index`` — an invertible
    mix, so two shards of one run (fixed base) can never collide, and
    the value is identical on every platform and process.
    """
    z = (base_seed * 0x9E3779B97F4A7C15 + index + 1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def plan_shards(
    n: int,
    workers: int,
    base_seed: int = 0,
    chunk_size: int | None = None,
) -> list[Shard]:
    """The chunk plan with a distinct per-shard RNG seed attached."""
    return [Shard(i, a, b, shard_seed(base_seed, i))
            for i, (a, b) in enumerate(plan_chunks(n, workers, chunk_size))]
