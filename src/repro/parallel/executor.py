"""Process-pool task executor with faithful failures and merged metrics.

:func:`run_tasks` maps a module-level task function over a list of
picklable payloads.  Three properties distinguish it from a bare
``ProcessPoolExecutor.map``:

* **Serial is the identity.**  With one worker (the default everywhere)
  the tasks run in-process in order — the exact code path a
  ``workers=None`` caller always had, so enabling the knob can only
  change wall-clock, never results.
* **Failures carry the original traceback.**  A task that raises inside
  a worker fails the whole run promptly with a :class:`ShardError`
  whose message embeds the worker-side traceback text; pending shards
  are cancelled, nothing hangs, and no shard is silently dropped.
* **Observability survives the fork.**  Each worker detaches the
  inherited trace sink (so it cannot interleave writes into the
  parent's JSONL file), resets the metrics registry, and returns its
  :func:`repro.obs.metrics.snapshot` with the result; the parent
  absorbs every shard's snapshot back into the live registry, so
  counters and histograms match the serial run's.  The parent wraps the
  run in a ``parallel.run`` span and emits a ``parallel.shard`` point
  event per completed shard.

Workers are forked where the platform allows (cheap, inherits imports)
and spawned otherwise.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Sequence

from repro.cache import flush_active, refresh_active
from repro.obs import event, metrics, span
from repro.obs.events import detach as _detach_trace
from repro.parallel.shards import resolve_workers

__all__ = ["ShardError", "clear_shared_pools", "discard_shared_pool",
           "run_tasks", "shared_pool"]


class ShardError(RuntimeError):
    """A worker task failed; the message embeds the original traceback."""

    def __init__(self, label: str, index: int, tb_text: str):
        self.label = label
        self.index = index
        self.tb_text = tb_text
        super().__init__(
            f"{label}: shard {index} failed in worker\n"
            f"--- worker traceback ---\n{tb_text}")


def _call_captured(task: Callable[[Any], Any], payload: Any) -> tuple:
    """Worker-side trampoline: isolate obs state, capture any failure."""
    _detach_trace()
    metrics.reset()
    t0 = time.perf_counter()
    try:
        result = task(payload)
    except Exception:
        return ("err", traceback.format_exc())
    finally:
        # publish this worker's cache segments (shard-local, atomically
        # renamed into place) so the parent's refresh sees them
        flush_active()
    return ("ok", result, metrics.snapshot(),
            time.perf_counter() - t0)


def _context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


# --------------------------------------------------------------------------
# shared (memoized) pools — fork once, reuse across calls
#
# ROADMAP's parallel-scaling regression traced to fork/pickle overhead
# dominating the now-fast serial path: every run_tasks call paid a fresh
# pool.  Pools memoized here are keyed by (kind, workers) and live until
# discarded, so repeated runs — validate passes, the serving layer's
# dispatch path, back-to-back benchmarks — amortize the fork.  The
# ``workers.pool_reuse`` counter records every amortized hit; the serving
# benchmark and bench_parallel_scaling share it to prove they are not
# double-forking.

_SHARED_POOLS: dict[tuple, ProcessPoolExecutor] = {}


def shared_pool(workers: int, *, kind: str = "tasks",
                initializer: Callable | None = None,
                initargs: tuple = ()) -> ProcessPoolExecutor:
    """The memoized pool for ``(kind, workers)``, created on first use.

    ``initializer``/``initargs`` only apply on creation (they are part
    of the pool's identity in spirit, so callers must use a distinct
    ``kind`` per initializer — the serving layer keys by arena name).
    Increments ``workers.pool_reuse`` on every memo hit.
    """
    key = (kind, workers)
    pool = _SHARED_POOLS.get(key)
    if pool is not None:
        metrics.counter("workers.pool_reuse").inc()
        return pool
    flush_active()
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=_context(),
                               initializer=initializer, initargs=initargs)
    _SHARED_POOLS[key] = pool
    metrics.counter("workers.pool_created").inc()
    return pool


def discard_shared_pool(kind: str, workers: int, *,
                        cancel: bool = False) -> None:
    """Shut down and forget one memoized pool (no-op when absent)."""
    pool = _SHARED_POOLS.pop((kind, workers), None)
    if pool is not None:
        pool.shutdown(wait=not cancel, cancel_futures=cancel)


def clear_shared_pools() -> None:
    """Shut down every memoized pool (tests; interpreter exit)."""
    while _SHARED_POOLS:
        _, pool = _SHARED_POOLS.popitem()
        # wait: returning before the workers exit races the stdlib's own
        # atexit hook (it pokes a pipe this shutdown already closed)
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(clear_shared_pools)


def run_tasks(
    task: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int | str | None = None,
    label: str = "parallel",
    on_result: Callable[[int, Any], None] | None = None,
    reuse_pool: bool = False,
) -> list[Any]:
    """Run ``task`` over every payload; results in payload order.

    ``task`` must be a module-level function (workers import it by
    qualified name) and payloads/results must pickle.  ``on_result`` is
    invoked as ``(index, result)`` in *completion* order — the hook for
    checkpointing finished shards while others still run — while the
    returned list always follows payload order.

    ``reuse_pool=True`` draws workers from the memoized
    :func:`shared_pool` instead of forking a fresh pool, so back-to-back
    calls (benchmark sweeps, the serving layer) pay the fork once; the
    pool survives the call and is torn down at interpreter exit or by
    :func:`clear_shared_pools`.  On failure the shared pool is discarded
    (its workers may hold cancelled state), so the next call re-forks.
    """
    n = len(payloads)
    n_workers = min(resolve_workers(workers), max(1, n))
    results: list[Any] = [None] * n
    with span("parallel.run", label=label, workers=n_workers, tasks=n):
        if n_workers <= 1:
            for i, payload in enumerate(payloads):
                results[i] = task(payload)
                if on_result is not None:
                    on_result(i, results[i])
            return results

        # flush pending cache writes so forked workers inherit a clean
        # store (no double-publishing of the parent's pending records)
        flush_active()
        if reuse_pool:
            pool = shared_pool(n_workers)
        else:
            pool = ProcessPoolExecutor(max_workers=n_workers,
                                       mp_context=_context())
        t_start = time.perf_counter()
        busy_s = 0.0
        futures = {pool.submit(_call_captured, task, p): i
                   for i, p in enumerate(payloads)}
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending,
                                     return_when=FIRST_COMPLETED)
                for fut in done:
                    i = futures[fut]
                    exc = fut.exception()
                    if exc is not None:
                        # pool-level failure (lost worker, unpicklable
                        # result, ...) — no worker traceback exists
                        raise ShardError(
                            label, i, "".join(traceback.format_exception(
                                type(exc), exc, exc.__traceback__)))
                    status = fut.result()
                    if status[0] == "err":
                        raise ShardError(label, i, status[1])
                    _, result, snap, shard_s = status
                    metrics.absorb(snap)
                    busy_s += shard_s
                    metrics.histogram("parallel.shard_s").observe(shard_s)
                    event("parallel.shard", label=label, index=i,
                          shard_s=round(shard_s, 6))
                    results[i] = result
                    if on_result is not None:
                        on_result(i, result)
        except BaseException:
            if reuse_pool:
                discard_shared_pool("tasks", n_workers, cancel=True)
            else:
                pool.shutdown(wait=False, cancel_futures=True)
            raise
        if not reuse_pool:
            pool.shutdown(wait=True)
        # worker-utilization gauges for `repro report`: what share of
        # the pool's capacity (workers x wall clock) ran task code —
        # low utilization means fork/pickle overhead or skew dominates.
        # Gauges/histograms only: the serial-vs-parallel *counter*
        # equality contract stays intact.
        wall_s = time.perf_counter() - t_start
        metrics.gauge("parallel.pool.workers").set(float(n_workers))
        metrics.gauge("parallel.pool.busy_s").set(busy_s)
        metrics.gauge("parallel.pool.wall_s").set(wall_s)
        if wall_s > 0.0:
            metrics.gauge("parallel.pool.utilization").set(
                busy_s / (n_workers * wall_s))
        # merge the segments the workers published (checkpoint-manifest
        # pattern: private files + atomic rename + parent re-scan)
        refresh_active()
    return results
