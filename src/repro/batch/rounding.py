"""Vectorized final rounding RN_T and bit-pattern encoding.

:func:`round_kernel` / :func:`bits_kernel` return array versions of the
scalar pair :func:`repro.core.generator.target_rounder` /
:func:`repro.core.generator.target_bits`, bit-identical per lane:

* **float32** — the hot path.  ``astype(np.float32)`` performs the same
  IEEE double→binary32 RNE conversion as the ``struct``-based
  :func:`repro.fp.float32.f32_round` (including the overflow threshold:
  the tie 2**127*(2-2**-24) rounds to the even 2**128, i.e. +inf).
  Only canonical quiet NaNs reach final rounding (the special-case
  layers return ``math.nan``), so the payload-truncating conversion is
  value- and bit-preserving for every value the pipeline produces.
* **parametric IEEE formats** — a uint64 bit algorithm on the double
  pattern: variable right shift of the 53-bit significand with
  round-to-nearest-even on the shifted-out bits, the unified
  normal/subnormal pattern ``((e+bias-1)<<mbits)+head`` (the implicit
  bit carries the rounded-up significand into the next exponent, and
  past ``emax`` into ``inf_bits``), exactly reproducing
  ``FloatFormat.from_fraction``.  Double *subnormal* inputs all round
  to (signed) zero whenever ``emin - mbits - 1 >= -1022`` — true for
  every mini-format; otherwise those rare lanes take the scalar
  encoder.
* **posits** — the bit-string RNE of
  ``PositFormat._encode_positive_double`` vectorized in int64 (the
  63-bit head ``(regime << (es+52-shift)) | (tail >> shift)`` avoids
  the >64-bit intermediate of the scalar code), and a decoder that
  finds the regime run length with a count-leading-zeros trick (int→
  float64 conversion is exact below 2**53, so the double's exponent
  field *is* floor(log2)).
* anything else falls back to a scalar loop (still bit-identical, just
  not fast).

Decoding deliberately maps every zero pattern to ``+0.0``:
``FloatFormat.to_double`` goes through :class:`fractions.Fraction`,
which has no signed zero, so the scalar ``round_double`` loses the
zero's sign for every format except the ``struct``-based float32 path
— and bit-identity means reproducing exactly that.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.intervals import TargetFormat
from repro.fp.formats import FLOAT32, FloatFormat
from repro.posit.format import PositFormat

__all__ = ["bits_kernel", "decode_kernel", "round_kernel"]

_ABS64 = 0x7FFFFFFFFFFFFFFF
_EXPINF = 0x7FF0000000000000
_FRAC52 = (1 << 52) - 1


# --------------------------------------------------------------------------
# float32 (the shipped 32-bit IEEE target)


def _f32_round(xs: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore", invalid="ignore"):
        return xs.astype(np.float32).astype(np.float64)


def _f32_bits(xs: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore", invalid="ignore"):
        f = xs.astype(np.float32)
    out = f.view(np.uint32).astype(np.uint64)
    out[np.isnan(f)] = np.uint64(0x7FC00000)  # canonical quiet NaN
    return out


# --------------------------------------------------------------------------
# parametric IEEE formats


class _FloatEncode:
    """``FloatFormat.from_double`` on arrays (uint64 patterns as int64)."""

    def __init__(self, fmt: FloatFormat):
        self.fmt = fmt
        self.mbits = fmt.mbits
        self.bias = fmt.bias
        self.emin = fmt.emin
        self.inf_bits = fmt.inf_bits
        self.nan_bits = fmt.nan_bits
        self.sign_mask = fmt.sign_mask
        # every nonzero double subnormal is below half the format's
        # smallest subnormal => rounds to (signed) zero
        self.tiny_to_zero = fmt.emin - fmt.mbits - 1 >= -1022

    def __call__(self, xs: np.ndarray) -> np.ndarray:
        b = xs.view(np.int64)
        mag = b & _ABS64
        sign = np.where(b < 0, self.sign_mask, 0)

        nan_m = mag > _EXPINF
        inf_m = mag == _EXPINF
        zero_m = mag == 0
        sub_m = (mag < (1 << 52)) & ~zero_m
        norm_m = ~(nan_m | inf_m | zero_m | sub_m)

        e = (mag >> 52) - 1023
        sig = (mag & _FRAC52) | (1 << 52)
        shift = 52 - self.mbits + np.maximum(self.emin - e, 0)
        np.clip(shift, 0, 54, out=shift)        # sig>>54 == 0 regardless
        head = sig >> shift
        rem = sig & (np.left_shift(1, shift) - 1)
        half = np.left_shift(1, np.maximum(shift - 1, 0))
        up = (rem > half) | ((rem == half) & ((head & 1) == 1))
        up &= shift > 0
        head = head + up
        pattern = np.where(e < self.emin, head,
                           ((e + self.bias - 1) << self.mbits) + head)
        pattern = np.where(pattern >= self.inf_bits, self.inf_bits, pattern)

        out = sign + pattern
        out[zero_m] = sign[zero_m]
        out[nan_m] = self.nan_bits
        out[inf_m] = sign[inf_m] + self.inf_bits
        if sub_m.any():
            if self.tiny_to_zero:
                out[sub_m] = sign[sub_m]
            else:
                out[sub_m] = [self.fmt.from_double(v)
                              for v in xs[sub_m].tolist()]
        return out


class _FloatDecode:
    """``FloatFormat.to_double`` on arrays of patterns."""

    def __init__(self, fmt: FloatFormat):
        self.mbits = fmt.mbits
        self.bias = fmt.bias
        self.emin = fmt.emin
        self.exp_mask = fmt.exp_mask
        self.mant_mask = fmt.mant_mask
        self.sign_mask = fmt.sign_mask

    def __call__(self, bits: np.ndarray) -> np.ndarray:
        e_f = (bits >> self.mbits) & self.exp_mask
        m = bits & self.mant_mask
        neg = (bits & self.sign_mask) != 0
        sig = np.where(e_f == 0, m, m + (1 << self.mbits))
        exp = np.where(e_f == 0, self.emin, e_f - self.bias) - self.mbits
        # exact: the value of every finite pattern is representable (and
        # for FLOAT64-as-target the subnormal result is the value itself)
        val = np.ldexp(sig.astype(np.float64), exp.astype(np.int32))
        val = np.where(neg, -val, val)
        top = e_f == self.exp_mask
        val[top & (m != 0)] = np.nan
        val[top & (m == 0) & ~neg] = np.inf
        val[top & (m == 0) & neg] = -np.inf
        # to_double goes through Fraction: both zero patterns are +0.0
        val[(e_f == 0) & (m == 0)] = 0.0
        return val


# --------------------------------------------------------------------------
# posits


def _posit_vectorizable(fmt: PositFormat) -> bool:
    # shift >= 1 in the encoder; <64-bit masks; exact int->float decode
    return fmt.nbits - 1 <= fmt.es + 52 and fmt.es <= 10


class _PositEncode:
    """``PositFormat.from_double`` on arrays (patterns as int64)."""

    def __init__(self, fmt: PositFormat):
        self.fmt = fmt

    def __call__(self, xs: np.ndarray) -> np.ndarray:
        fmt = self.fmt
        es = fmt.es
        avail = fmt.nbits - 1
        mask = fmt.mask

        b = xs.view(np.int64)
        mag = b & _ABS64
        a = np.abs(xs)

        nar_m = mag >= _EXPINF                 # NaN or inf -> NaR
        zero_m = mag == 0
        max_m = ~nar_m & (a >= fmt._maxpos_f)
        min_m = ~zero_m & (a <= fmt._minpos_f)

        # remaining lanes are normal doubles strictly inside
        # (minpos, maxpos): frexp via the bit pattern
        s = (mag >> 52) - 1023
        frac52 = mag & _FRAC52
        k = s >> es                            # floor division by 2**es
        eo = s - (k << es)
        pos_r = k >= 0
        rw = np.where(pos_r, k + 2, 1 - k)     # regime width
        rv = np.where(pos_r,
                      np.left_shift(1, np.clip(k + 2, 0, 62)) - 2, 1)
        # in-range magnitudes keep rw <= avail, so 1 <= shift <= es+52
        shift = rw + es + 52 - avail
        tail = (eo << 52) | frac52
        head = np.left_shift(rv, es + 52 - shift) | (tail >> shift)
        rem = tail & (np.left_shift(1, shift) - 1)
        half = np.left_shift(1, shift - 1)
        head = head + ((rem > half) | ((rem == half) & ((head & 1) == 1)))
        head = np.where(head >= np.int64(1) << avail, fmt.maxpos_bits, head)

        neg = b < 0
        out = np.where(neg, (-head) & mask, head)
        out[max_m] = np.where(neg[max_m],
                              (-fmt.maxpos_bits) & mask, fmt.maxpos_bits)
        out[min_m] = np.where(neg[min_m],
                              (-fmt.minpos_bits) & mask, fmt.minpos_bits)
        out[zero_m] = 0
        out[nar_m] = fmt.nar_bits
        return out


class _PositDecode:
    """``PositFormat.to_double`` on arrays of patterns."""

    def __init__(self, fmt: PositFormat):
        self.fmt = fmt

    def __call__(self, bits: np.ndarray) -> np.ndarray:
        fmt = self.fmt
        es = fmt.es
        w = fmt.nbits - 1
        bits = bits & fmt.mask
        nar_m = bits == fmt.nar_bits
        zero_m = bits == 0
        neg = (bits & fmt.sign_mask) != 0
        mag = np.where(neg, (-bits) & fmt.mask, bits)

        first = (mag >> (w - 1)) & 1
        t = np.where(first == 1, ~mag & ((1 << w) - 1), mag)
        # regime run length: leading zeros of t within w bits; int->
        # float64 is exact below 2**53, so the exponent field of the
        # conversion is floor(log2 t)
        fl = (t.astype(np.float64).view(np.int64) >> 52) - 1023
        fl = np.where(t > 0, fl, -1)           # t == 0: run covers all w bits
        run = w - 1 - fl
        k = np.where(first == 1, run - 1, -run)

        rem_w = np.maximum(w - run - 1, 0)
        rem = mag & (np.left_shift(1, rem_w) - 1)
        e = np.where(rem_w >= es,
                     rem >> np.maximum(rem_w - es, 0),
                     np.left_shift(rem, np.maximum(es - rem_w, 0)))
        fw = np.maximum(rem_w - es, 0)
        frac = rem & (np.left_shift(1, fw) - 1)
        scale = (k << es) + e
        sig = np.left_shift(np.int64(1), fw) + frac
        # exact: sig < 2**53 and the value is a normal double
        val = np.ldexp(sig.astype(np.float64), (scale - fw).astype(np.int32))
        val = np.where(neg, -val, val)
        val[zero_m] = 0.0
        val[nar_m] = np.nan
        return val


# --------------------------------------------------------------------------
# scalar fallbacks (exotic formats): correct, merely not vectorized


def _scalar_round(fmt: TargetFormat) -> Callable:
    def kernel(xs: np.ndarray) -> np.ndarray:
        return np.array([fmt.round_double(x) for x in xs.tolist()],
                        dtype=np.float64)

    return kernel


def _scalar_bits(fmt: TargetFormat) -> Callable:
    def kernel(xs: np.ndarray) -> np.ndarray:
        return np.array([fmt.from_double(x) for x in xs.tolist()],
                        dtype=np.uint64)

    return kernel


# --------------------------------------------------------------------------
# dispatch


def round_kernel(fmt: TargetFormat) -> Callable:
    """Array version of ``target_rounder(fmt)``: doubles -> T-rounded
    doubles, bit-identical per lane."""
    if fmt is FLOAT32:
        return _f32_round
    if isinstance(fmt, FloatFormat):
        enc = _FloatEncode(fmt)
        dec = _FloatDecode(fmt)

        def kernel(xs: np.ndarray) -> np.ndarray:
            return dec(enc(xs))

        return kernel
    if isinstance(fmt, PositFormat) and _posit_vectorizable(fmt):
        enc = _PositEncode(fmt)
        dec = _PositDecode(fmt)

        def kernel(xs: np.ndarray) -> np.ndarray:
            return dec(enc(xs))

        return kernel
    return _scalar_round(fmt)


def decode_kernel(fmt: TargetFormat) -> Callable:
    """Array decoder: T bit patterns (uint64) -> the doubles the runtime
    receives, lane-identical to
    :func:`repro.eval.adversarial.generators.input_value`.

    Like ``input_value`` (and unlike the bare ``to_double``), the IEEE
    negative-zero pattern decodes to ``-0.0`` — ``sinpi``/``cospi``
    results depend on the sign of zero, and serving requests carry raw
    bit patterns exactly as the frozen adversarial corpora do.
    """
    if isinstance(fmt, FloatFormat):
        dec = _FloatDecode(fmt)
        sign_mask = fmt.sign_mask

        def kernel(bits: np.ndarray) -> np.ndarray:
            val = dec(bits)
            val[bits == sign_mask] = -0.0
            return val

        return kernel
    if isinstance(fmt, PositFormat) and _posit_vectorizable(fmt):
        dec = _PositDecode(fmt)

        def kernel(bits: np.ndarray) -> np.ndarray:
            # the posit decoder's shift arithmetic is written in int64
            return dec(bits.astype(np.int64))

        return kernel

    def kernel(bits: np.ndarray) -> np.ndarray:
        return np.array([fmt.to_double(int(b)) for b in bits.tolist()],
                        dtype=np.float64)

    return kernel


def bits_kernel(fmt: TargetFormat) -> Callable:
    """Array version of ``target_bits(fmt, .)``: doubles -> T bit
    patterns (uint64), bit-identical per lane."""
    if fmt is FLOAT32:
        return _f32_bits
    if isinstance(fmt, FloatFormat):
        enc = _FloatEncode(fmt)

        def kernel(xs: np.ndarray) -> np.ndarray:
            return enc(xs).astype(np.uint64)

        return kernel
    if isinstance(fmt, PositFormat) and _posit_vectorizable(fmt):
        enc = _PositEncode(fmt)

        def kernel(xs: np.ndarray) -> np.ndarray:
            return enc(xs).astype(np.uint64)

        return kernel
    return _scalar_bits(fmt)
