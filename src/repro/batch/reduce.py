"""Shared numpy helpers for the vectorized range reductions.

The ``special_batch`` / ``reduce_batch`` / ``compensate_batch``
overrides in :mod:`repro.rangereduction` must perform, per lane, the
exact double-precision operation sequence of their scalar counterparts.
These helpers centralize the two integer idioms those methods need —

* :func:`rint_i64` — ``round(x)`` (round-half-to-even) as an int64
  array.  ``np.rint`` implements the same IEEE nearbyint the Python
  built-in does for doubles, and every ``k`` produced by the reductions
  is far below 2**53, so the float→int conversion is exact.
* :func:`trunc_i64` — ``int(x)`` (truncation toward zero).

— and the per-reduction table cache:

* :func:`table` — a read-only float64 view of a tuple-valued table
  attribute (``_tab``, ``_sinh_t``, ...), memoized *outside* the
  instance in a :class:`~weakref.WeakKeyDictionary`.  The cache must
  not live in ``rr.__dict__``: :func:`repro.libm.serialize._rr_state`
  serializes that dict verbatim into the frozen data modules, and a
  numpy array leaking into it would change the frozen representation.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

import numpy as np

__all__ = ["rint_i64", "table", "trunc_i64"]

_TABLE_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def rint_i64(x: np.ndarray) -> np.ndarray:
    """``round(x)`` per lane (ties to even), as int64."""
    return np.rint(x).astype(np.int64)


def trunc_i64(x: np.ndarray) -> np.ndarray:
    """``int(x)`` per lane (truncation toward zero), as int64."""
    return x.astype(np.int64)


def table(owner: object, attr: str) -> np.ndarray:
    """Read-only float64 array view of ``getattr(owner, attr)``."""
    per = _TABLE_CACHE.get(owner)
    if per is None:
        per = {}
        _TABLE_CACHE[owner] = per
    arr = per.get(attr)
    if arr is None:
        arr = np.array(getattr(owner, attr), dtype=np.float64)
        arr.setflags(write=False)
        per[attr] = arr
    return arr
