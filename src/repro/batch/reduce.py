"""Shared numpy helpers for the vectorized range reductions.

The ``special_batch`` / ``reduce_batch`` / ``compensate_batch``
overrides in :mod:`repro.rangereduction` must perform, per lane, the
exact double-precision operation sequence of their scalar counterparts.
These helpers centralize the two integer idioms those methods need —

* :func:`rint_i64` — ``round(x)`` (round-half-to-even) as an int64
  array.  ``np.rint`` implements the same IEEE nearbyint the Python
  built-in does for doubles, and every ``k`` produced by the reductions
  is far below 2**53, so the float→int conversion is exact.
* :func:`trunc_i64` — ``int(x)`` (truncation toward zero).

— and the per-reduction table cache:

* :func:`table` — a read-only float64 view of a tuple-valued table
  attribute (``_tab``, ``_sinh_t``, ...), memoized *outside* the
  instance in a :class:`~weakref.WeakKeyDictionary`.  The cache must
  not live in ``rr.__dict__``: :func:`repro.libm.serialize._rr_state`
  serializes that dict verbatim into the frozen data modules, and a
  numpy array leaking into it would change the frozen representation.

  Functions decoded from a compact frozen module
  (:mod:`repro.libm.compact`) or rebuilt from a shared-memory arena
  (:mod:`repro.serve.tables`) :func:`prime` this cache at build time
  with zero-copy views straight into the decoded coefficient pool, so
  the hot path never re-converts the Python tuples; the lazy
  ``np.array(tuple)`` conversion below is only the fallback for
  non-compact (test-constructed) functions.

:class:`FrozenGather` lives here — not in :mod:`repro.batch.kernels` —
so the lightweight decode path (``repro.libm.compact``) can attach
frozen gathered-Horner tables to a piecewise polynomial without pulling
in the kernel compiler and the generation core behind it.
"""

from __future__ import annotations

from typing import NamedTuple, Optional
from weakref import WeakKeyDictionary

import numpy as np

__all__ = ["FrozenGather", "prime", "rint_i64", "table", "trunc_i64"]

_TABLE_CACHE: WeakKeyDictionary = WeakKeyDictionary()


class FrozenGather(NamedTuple):
    """Prebuilt gathered-Horner tables for one piecewise side.

    ``cols`` is the padded coefficient matrix (``nterms`` x ``nuniq``
    float64, row ``t`` = coefficient ``t`` of every *unique* sub-domain
    polynomial); ``index`` maps the 2**index_bits sub-domain slots onto
    the unique polynomials (None = identity, no duplicates).  Attached
    to ``PiecewisePolynomial.__dict__['_frozen']`` by the compact
    decoder and consumed by :func:`repro.batch.kernels.compile_piecewise`
    so loading a compact table never re-derives or re-pads the columns.
    """

    shift: int
    index_bits: int
    start: int
    stride: int
    cols: np.ndarray
    index: Optional[np.ndarray]


def rint_i64(x: np.ndarray) -> np.ndarray:
    """``round(x)`` per lane (ties to even), as int64."""
    return np.rint(x).astype(np.int64)


def trunc_i64(x: np.ndarray) -> np.ndarray:
    """``int(x)`` per lane (truncation toward zero), as int64."""
    return x.astype(np.int64)


def prime(owner: object, attr: str, arr: np.ndarray) -> None:
    """Pre-populate :func:`table`'s cache with a read-only float64 view.

    ``arr`` must hold exactly the doubles of ``getattr(owner, attr)``
    (the compact decoder guarantees this: both come from the same pool
    bytes).  Priming is idempotent; the first entry wins so a primed
    zero-copy view is never displaced by a later lazy conversion.
    """
    per = _TABLE_CACHE.get(owner)
    if per is None:
        per = {}
        _TABLE_CACHE[owner] = per
    if attr not in per:
        if arr.dtype != np.float64:
            arr = arr.astype(np.float64)
        if arr.flags.writeable:
            arr = arr.view()
            arr.setflags(write=False)
        per[attr] = arr


def table(owner: object, attr: str) -> np.ndarray:
    """Read-only float64 array view of ``getattr(owner, attr)``."""
    per = _TABLE_CACHE.get(owner)
    if per is None:
        per = {}
        _TABLE_CACHE[owner] = per
    arr = per.get(attr)
    if arr is None:
        arr = np.array(getattr(owner, attr), dtype=np.float64)
        arr.setflags(write=False)
        per[attr] = arr
    return arr
