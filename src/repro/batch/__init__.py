"""Vectorized batch evaluation of generated functions.

The runtime path of a :class:`~repro.core.generator.GeneratedFunction`
is one pure-Python call per input.  This package runs the *same*
pipeline — special cases, range reduction RR_H, shift+mask sub-domain
lookup on the binary64 bit pattern, per-sub-domain Horner, output
compensation OC_H, final rounding RN_T — on numpy float64 arrays,
element-for-element **bit-identical** to the scalar path (see
DESIGN.md, "Scalar/batch bit-identity").

Layout
------

``engine``    :class:`~repro.batch.engine.BatchFunction` — the array
              pipeline behind ``GeneratedFunction.batch``
``kernels``   vectorized piecewise-polynomial evaluation (index
              extraction via uint64 bit ops, gathered-coefficient
              Horner with a bit-exact grouped fallback)
``rounding``  vectorized final rounding / bit-pattern encoding for
              float32, parametric IEEE formats and posits
``reduce``    shared numpy helpers for the per-reduction
              ``special_batch`` / ``reduce_batch`` /
              ``compensate_batch`` methods in ``repro.rangereduction``

Imports are lazy (module ``__getattr__``) so ``repro.rangereduction``
modules can reference :mod:`repro.batch.reduce` without creating an
import cycle through the engine (which imports ``repro.core``).
"""

from __future__ import annotations

__all__ = ["BatchFunction", "bits_kernel", "compile_approx",
           "compile_piecewise", "round_kernel"]

_LAZY = {
    "BatchFunction": "repro.batch.engine",
    "bits_kernel": "repro.batch.rounding",
    "round_kernel": "repro.batch.rounding",
    "compile_approx": "repro.batch.kernels",
    "compile_piecewise": "repro.batch.kernels",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(mod), name)
