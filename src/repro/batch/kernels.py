"""Vectorized piecewise-polynomial evaluation kernels.

:func:`compile_piecewise` turns a
:class:`~repro.core.piecewise.PiecewisePolynomial` into an array kernel
``r -> values`` that is bit-identical, lane for lane, to the compiled
scalar closure:

* the sub-domain index is extracted exactly as
  :meth:`~repro.core.piecewise.PiecewisePolynomial.index_of` does —
  one shift and one mask of the reduced input's binary64 bit pattern,
  via a uint64 view of the float64 array;
* the polynomials are evaluated with a *gathered-coefficient* Horner:
  the per-sub-domain coefficients are stored as one column array per
  Horner step and gathered by index, so every lane runs the shared
  straight-line sequence ``acc = acc*u + c[idx]`` regardless of which
  sub-domain it hit — the array analogue of RLIBM-32's generated C
  table lookup.

The gathered form requires every sub-domain polynomial to be a prefix
of one shared monomial progression (which is what the generator
produces: Algorithm 3 hands every sub-domain the same candidate
exponent list and the CEG degree-lowering pass truncates it).  Shorter
rows are padded with zero coefficients; the padding steps compute
``0.0*u + c`` which reproduces ``c`` bit-exactly *except* when the
row's own leading coefficient is a (signed) zero, where the sign of
zero could flip.  :func:`compile_piecewise` checks both conditions at
build time and otherwise falls back to grouping lanes by sub-domain and
running :meth:`~repro.core.polynomials.Polynomial.eval_many` per group
— slower, but equally bit-exact.

Two fast paths layer on top of the generic gathered loop, both
*prove-or-fallback* — the selection logic may only pick a specialized
kernel whose per-lane operation sequence is identical to the generic
one, and anything unprovable falls back:

* **frozen tables** — a piecewise polynomial decoded from a compact
  frozen module (:mod:`repro.libm.compact`) carries a prebuilt
  :class:`~repro.batch.reduce.FrozenGather` in
  ``pp.__dict__['_frozen']``: the padded column matrix (deduplicated to
  *unique* sub-domain polynomials) plus the slot→unique index
  indirection.  :func:`compile_piecewise` uses it directly instead of
  re-deriving and re-padding the columns on every load;
* **degree-specialized kernels** — for each table shape
  ``(nterms, start, stride, indexed?)`` an unrolled straight-line
  kernel is generated once (and cached process-wide): the Horner loop
  is peeled into explicit ``acc *= u; acc += c_t.take(idx, out=buf)``
  statements and ``_pow_small`` collapses to literal multiplies.  The
  statement sequence is the generic loop's iteration-for-iteration
  transcript, so the specialization is bit-identical by construction;
  shapes beyond :data:`_MAX_UNROLL` terms keep the generic loop.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional, Sequence

import numpy as np

from repro.batch.reduce import FrozenGather
from repro.core.piecewise import ApproxFunc, PiecewisePolynomial
from repro.core.polynomials import Polynomial, _pow_small, horner_structure

__all__ = ["compile_approx", "compile_piecewise", "frozen_from_polys",
           "gathered_kernel", "merged_kernel", "merged_sign_tables",
           "padded_tables"]


def padded_tables(polys: Sequence[Polynomial]):
    """Gathered-Horner tables ``(start, stride, cols)``, or None.

    ``cols[t]`` holds coefficient ``t`` of every sub-domain (zero-padded
    rows for lowered-degree polynomials).  Returns None when the padded
    evaluation cannot be proven bit-identical to the scalar path.

    Public because the serving layer's shared-memory arena
    (:mod:`repro.serve.tables`) freezes exactly these column arrays and
    rebuilds the kernel in attached worker processes via
    :func:`gathered_kernel`.
    """
    ref = max(polys, key=lambda p: len(p.exponents))
    exps = ref.exponents
    struct = horner_structure(exps)
    if struct is None:
        return None
    for p in polys:
        if tuple(p.exponents) != exps[:len(p.exponents)]:
            return None
        # a padded step computes 0.0*u + c_top; that is bit-identical to
        # starting from c_top unless c_top is a signed zero
        if len(p.exponents) < len(exps) and p.coefficients[-1] == 0.0:
            return None
    start, stride = struct
    nterms = len(exps)
    grid = np.zeros((nterms, len(polys)), dtype=np.float64)
    for i, p in enumerate(polys):
        grid[:len(p.coefficients), i] = p.coefficients
    cols = [np.ascontiguousarray(grid[t]) for t in range(nterms)]
    return start, stride, cols


def frozen_from_polys(pp: PiecewisePolynomial) -> Optional[FrozenGather]:
    """Deduplicated frozen gathered tables for ``pp``, or None.

    The serving arena uses this for piecewise polynomials that were not
    loaded from a compact module: pad via :func:`padded_tables`, then
    merge byte-identical columns behind a slot→unique index indirection
    so repeated sub-domain polynomials (common after CEG degree
    lowering) are stored once.  Gathering through the indirection reads
    the exact same doubles as gathering the full table, so bit-identity
    is preserved trivially.
    """
    if pp.index_bits == 0:
        return None
    padded = padded_tables(pp.polys)
    if padded is None:
        return None
    start, stride, cols = padded
    block = np.stack(cols)                       # nterms x nslots
    nslots = block.shape[1]
    seen: dict[bytes, int] = {}
    keep: list[int] = []
    index = np.empty(nslots, dtype=np.intp)
    for i in range(nslots):
        key = block[:, i].tobytes()
        j = seen.get(key)
        if j is None:
            j = seen[key] = len(keep)
            keep.append(i)
        index[i] = j
    uniq = np.ascontiguousarray(block[:, keep])
    idx = None if len(keep) == nslots else index
    return FrozenGather(pp.shift, pp.index_bits, start, stride, uniq, idx)


# ---------------------------------------------------------------------------
# degree-specialized kernels

#: largest table (Horner terms) that gets an unrolled kernel; shipped
#: tables top out well below this — beyond it the loop overhead the
#: unrolling removes is noise anyway
_MAX_UNROLL = 12

_SPECIALIZED_CACHE: dict[tuple, Callable] = {}


def _specialized_factory(nterms: int, start: int, stride: int,
                         folded: bool, indexed: bool) -> Optional[Callable]:
    """A ``(cols, index, shift, mask, signoff) -> kernel`` maker.

    ``folded`` adds the two-sided sign fold (``r < 0.0`` adds
    ``signoff`` to the bit-pattern field, see
    :func:`merged_sign_tables`); ``indexed`` routes the result through
    a slot→unique indirection (small indirections are pre-expanded into
    the columns at build time instead, see :func:`_expand_index`).  The
    generated source is the generic gathered loop unrolled for this
    exact shape — same statements, same order, same in-place ufuncs —
    so the kernel it builds is bit-identical to :func:`gathered_kernel`
    running the loop (asserted over every shipped table by
    ``tests/test_compact.py``).  The sub-domain index is computed as a
    zero-cost int64 *view* of the masked uint64 field (every value is
    far below 2**63, so the reinterpretation is the identity).
    """
    if nterms > _MAX_UNROLL:
        return None
    key = (nterms, start, stride, folded, indexed)
    maker = _SPECIALIZED_CACHE.get(key)
    if maker is not None:
        return maker

    def pow_expr(e: int) -> str:
        # mirror _pow_small's left-to-right multiply chain
        return " * ".join(["r"] * e)

    lines = ["def _maker(cols, index, shift, mask, signoff):"]
    for t in range(nterms):
        lines.append(f"    c{t} = cols[{t}]")
    lines.append("    def kernel(r):")
    lines.append("        idx = ((r.view(_u64) >> shift) & mask)"
                 ".view(_i64)")
    if folded:
        lines.append("        _add(idx, signoff, out=idx, "
                     "where=(r < _zero))")
    if indexed:
        lines.append("        idx = index.take(idx)")
    if nterms > 1:
        lines.append(f"        u = {pow_expr(stride)}")
        lines.append(f"        acc = c{nterms - 1}.take(idx)")
        lines.append("        buf = _empty_like(acc)")
        for t in range(nterms - 2, -1, -1):
            lines.append("        acc *= u")
            lines.append(f"        acc += _take(c{t}, idx, out=buf)")
    else:
        lines.append("        acc = c0.take(idx)")
    if start:
        lines.append(f"        acc *= {pow_expr(start)}")
    lines.append("        return acc")
    lines.append("    return kernel")
    ns = {"_u64": np.uint64, "_i64": np.int64, "_take": np.take,
          "_empty_like": np.empty_like, "_add": np.add, "_zero": 0.0}
    exec(compile("\n".join(lines), f"<horner{key}>", "exec"), ns)
    maker = ns["_maker"]
    _SPECIALIZED_CACHE[key] = maker
    return maker


#: largest pre-expanded table (doubles): below this, a slot→unique
#: indirection is composed into the columns at kernel-build time,
#: trading a few KB of per-process memory for one less 1M-lane gather
#: per call
_EXPAND_MAX = 65536


def _expand_index(cols: Sequence[np.ndarray], index: Optional[np.ndarray]):
    """Compose a small indirection into the columns (same doubles).

    ``cols[t].take(index)`` precomputes ``cols[t][index[k]]`` for every
    key ``k``, so the runtime gather reads the identical double with
    one hop instead of two; large indirections are kept as-is.
    """
    if index is None or index.size * len(cols) > _EXPAND_MAX:
        return list(cols), index
    return [c.take(index) for c in cols], None


def gathered_kernel(shift: int, index_bits: int, start: int, stride: int,
                    cols: Sequence[np.ndarray],
                    index: Optional[np.ndarray] = None,
                    specialize: bool = True) -> Callable:
    """The gathered-coefficient Horner kernel over prebuilt column arrays.

    ``cols`` may be any float64 arrays of equal length — freshly padded
    ones from :func:`padded_tables`, deduplicated unique columns, or
    read-only views into a shared-memory arena; the kernel never writes
    into them.  ``index``, when given, is the slot→unique indirection of
    a deduplicated table: the bit-pattern index selects a slot, the
    indirection selects the unique polynomial (identical doubles either
    way).  ``specialize=False`` forces the generic loop — the reference
    the tests hold the specialized kernels against.
    """
    u_shift = np.uint64(shift)
    mask = np.uint64((1 << index_bits) - 1)
    nterms = len(cols)

    if specialize:
        cols, index = _expand_index(cols, index)
        maker = _specialized_factory(nterms, start, stride, False,
                                     index is not None)
        if maker is not None:
            return maker(list(cols), index, u_shift, mask, 0)

    def kernel(r: np.ndarray) -> np.ndarray:
        idx = ((r.view(np.uint64) >> u_shift) & mask).astype(np.intp)
        if index is not None:
            idx = index.take(idx)
        if nterms > 1:
            u = _pow_small(r, stride)
            acc = cols[nterms - 1].take(idx)
            buf = np.empty_like(acc)
            # in-place steps: same multiply/add per lane, no temporaries
            for t in range(nterms - 2, -1, -1):
                acc *= u
                acc += np.take(cols[t], idx, out=buf)
        else:
            acc = cols[0].take(idx)
        if start:
            acc *= _pow_small(r, start)
        return acc

    return kernel


#: widest merged bit field (sign excluded); the indirection table holds
#: ``2**(w+1)`` intp entries, so 12 caps it at 8192 — shipped two-sided
#: tables stay below w=5
_MERGE_MAX_BITS = 12


def merged_sign_tables(af: ApproxFunc):
    """Single-table form of a two-sided approximation, or None.

    The batch sign dispatch (mask, gather negative lanes, evaluate,
    scatter — then again for the positive lanes) costs more than the
    polynomial evaluation itself on small tables.  When both sides
    draw from one shared monomial progression, the two piecewise
    tables merge into a single gathered table whose index is the
    side's own bit-pattern field widened to cover both sides' fields,
    plus the sign fold (``r < 0.0``, exactly the dispatch predicate —
    ``-0.0`` and NaN lanes land on the ``pos`` side, as before) as the
    top index bit.  An indirection table maps each (sign, wide-field)
    key to the unique polynomial row the unmerged path would have
    picked, so the gathered doubles are identical lane for lane and
    the only op-sequence change is the zero-padding of shorter rows —
    sound under exactly the :func:`padded_tables` conditions, which
    this derivation re-checks over the *union* of both sides' rows.

    Returns ``(smin, w, start, stride, cols, index)`` with ``cols``
    the padded ``nterms x nuniq`` unique-row columns and ``index`` the
    ``2**(w+1)``-entry indirection, or None when unprovable.
    """
    neg, pos = af.neg, af.pos
    if neg is None or pos is None:
        return None
    spans = [(pp.shift, pp.index_bits) for pp in (neg, pos)
             if pp.index_bits > 0]
    if spans:
        smin = min(s for s, _ in spans)
        w = max(s + b for s, b in spans) - smin
    else:
        smin, w = 0, 0
    if w > _MERGE_MAX_BITS:
        return None
    polys = list(neg.polys) + list(pos.polys)
    ref = max(polys, key=lambda p: len(p.exponents))
    exps = ref.exponents
    struct_ = horner_structure(exps)
    if struct_ is None:
        return None
    for p in polys:
        if tuple(p.exponents) != exps[:len(p.exponents)]:
            return None
        if len(p.exponents) < len(exps) and p.coefficients[-1] == 0.0:
            return None
    start, stride = struct_
    nterms = len(exps)

    seen: dict[tuple, int] = {}
    uniq: list[Polynomial] = []

    def uid(p: Polynomial) -> int:
        key = (tuple(p.exponents),
               struct.pack(f"<{len(p.coefficients)}d", *p.coefficients))
        j = seen.get(key)
        if j is None:
            j = seen[key] = len(uniq)
            uniq.append(p)
        return j

    index = np.empty(1 << (w + 1), dtype=np.intp)
    for sign, pp in ((0, pos), (1, neg)):
        maskb = (1 << pp.index_bits) - 1
        for wide in range(1 << w):
            if pp.index_bits:
                sub = (wide >> (pp.shift - smin)) & maskb
            else:
                sub = 0
            index[(sign << w) | wide] = uid(pp.polys[sub])
    grid = np.zeros((nterms, len(uniq)), dtype=np.float64)
    for i, p in enumerate(uniq):
        grid[:len(p.coefficients), i] = p.coefficients
    return smin, w, start, stride, grid, index


def merged_kernel(smin: int, w: int, start: int, stride: int,
                   cols: np.ndarray, index: np.ndarray) -> Callable:
    """Kernel over :func:`merged_sign_tables` output (both signs)."""
    nterms = len(cols)
    u_shift = np.uint64(smin)
    mask = np.uint64((1 << w) - 1)
    signoff = 1 << w
    xcols, xindex = _expand_index(list(cols), index)
    maker = _specialized_factory(nterms, start, stride, True,
                                 xindex is not None)
    if maker is not None:
        return maker(xcols, xindex, u_shift, mask, signoff)

    def kernel(r: np.ndarray) -> np.ndarray:
        idx = ((r.view(np.uint64) >> u_shift) & mask).astype(np.intp)
        np.add(idx, signoff, out=idx, where=(r < 0.0))
        idx = index.take(idx)
        if nterms > 1:
            u = _pow_small(r, stride)
            acc = cols[nterms - 1].take(idx)
            buf = np.empty_like(acc)
            for t in range(nterms - 2, -1, -1):
                acc *= u
                acc += np.take(cols[t], idx, out=buf)
        else:
            acc = cols[0].take(idx)
        if start:
            acc *= _pow_small(r, start)
        return acc

    return kernel


def compile_piecewise(pp: PiecewisePolynomial) -> Callable:
    """Array kernel for one piecewise polynomial (bit-exact per lane)."""
    if pp.index_bits == 0:
        p0 = pp.polys[0]
        return p0.eval_many

    fz = pp.__dict__.get("_frozen")
    if isinstance(fz, FrozenGather) and fz.index_bits == pp.index_bits \
            and fz.shift == pp.shift:
        return gathered_kernel(fz.shift, fz.index_bits, fz.start,
                               fz.stride, list(fz.cols), fz.index)

    padded = padded_tables(pp.polys)
    if padded is not None:
        start, stride, cols = padded
        return gathered_kernel(pp.shift, pp.index_bits, start, stride, cols)

    shift = np.uint64(pp.shift)
    mask = np.uint64((1 << pp.index_bits) - 1)

    def indices(r: np.ndarray) -> np.ndarray:
        return ((r.view(np.uint64) >> shift) & mask).astype(np.intp)

    polys = pp.polys

    def kernel(r: np.ndarray) -> np.ndarray:
        idx = indices(r)
        out = np.empty_like(r)
        for i in np.unique(idx):
            sel = idx == i
            out[sel] = polys[i].eval_many(r[sel])
        return out

    return kernel


def compile_approx(af: ApproxFunc) -> Callable:
    """Array kernel mirroring ``ApproxFunc.compiled`` sign dispatch.

    When only one sign's piecewise polynomial exists the compiled scalar
    closure uses it for *every* input with no sign check; the batch
    kernel reproduces exactly that behaviour.
    """
    neg = compile_piecewise(af.neg) if af.neg is not None else None
    pos = compile_piecewise(af.pos) if af.pos is not None else None
    if neg is None:
        return pos
    if pos is None:
        return neg

    merged = merged_sign_tables(af)
    if merged is not None:
        return merged_kernel(*merged)

    def kernel(r: np.ndarray) -> np.ndarray:
        out = np.empty_like(r)
        m = r < 0.0
        if m.any():
            out[m] = neg(r[m])
        m = ~m
        if m.any():
            out[m] = pos(r[m])
        return out

    return kernel
