"""Vectorized piecewise-polynomial evaluation kernels.

:func:`compile_piecewise` turns a
:class:`~repro.core.piecewise.PiecewisePolynomial` into an array kernel
``r -> values`` that is bit-identical, lane for lane, to the compiled
scalar closure:

* the sub-domain index is extracted exactly as
  :meth:`~repro.core.piecewise.PiecewisePolynomial.index_of` does —
  one shift and one mask of the reduced input's binary64 bit pattern,
  via a uint64 view of the float64 array;
* the polynomials are evaluated with a *gathered-coefficient* Horner:
  the per-sub-domain coefficients are stored as one column array per
  Horner step and gathered by index, so every lane runs the shared
  straight-line sequence ``acc = acc*u + c[idx]`` regardless of which
  sub-domain it hit — the array analogue of RLIBM-32's generated C
  table lookup.

The gathered form requires every sub-domain polynomial to be a prefix
of one shared monomial progression (which is what the generator
produces: Algorithm 3 hands every sub-domain the same candidate
exponent list and the CEG degree-lowering pass truncates it).  Shorter
rows are padded with zero coefficients; the padding steps compute
``0.0*u + c`` which reproduces ``c`` bit-exactly *except* when the
row's own leading coefficient is a (signed) zero, where the sign of
zero could flip.  :func:`compile_piecewise` checks both conditions at
build time and otherwise falls back to grouping lanes by sub-domain and
running :meth:`~repro.core.polynomials.Polynomial.eval_many` per group
— slower, but equally bit-exact.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.piecewise import ApproxFunc, PiecewisePolynomial
from repro.core.polynomials import Polynomial, _pow_small, horner_structure

__all__ = ["compile_approx", "compile_piecewise", "gathered_kernel",
           "padded_tables"]


def padded_tables(polys: Sequence[Polynomial]):
    """Gathered-Horner tables ``(start, stride, cols)``, or None.

    ``cols[t]`` holds coefficient ``t`` of every sub-domain (zero-padded
    rows for lowered-degree polynomials).  Returns None when the padded
    evaluation cannot be proven bit-identical to the scalar path.

    Public because the serving layer's shared-memory arena
    (:mod:`repro.serve.tables`) freezes exactly these column arrays and
    rebuilds the kernel in attached worker processes via
    :func:`gathered_kernel`.
    """
    ref = max(polys, key=lambda p: len(p.exponents))
    exps = ref.exponents
    struct = horner_structure(exps)
    if struct is None:
        return None
    for p in polys:
        if tuple(p.exponents) != exps[:len(p.exponents)]:
            return None
        # a padded step computes 0.0*u + c_top; that is bit-identical to
        # starting from c_top unless c_top is a signed zero
        if len(p.exponents) < len(exps) and p.coefficients[-1] == 0.0:
            return None
    start, stride = struct
    nterms = len(exps)
    grid = np.zeros((nterms, len(polys)), dtype=np.float64)
    for i, p in enumerate(polys):
        grid[:len(p.coefficients), i] = p.coefficients
    cols = [np.ascontiguousarray(grid[t]) for t in range(nterms)]
    return start, stride, cols


def gathered_kernel(shift: int, index_bits: int, start: int, stride: int,
                    cols: Sequence[np.ndarray]) -> Callable:
    """The gathered-coefficient Horner kernel over prebuilt column arrays.

    ``cols`` may be any float64 arrays of equal length — freshly padded
    ones from :func:`padded_tables` or read-only views into a shared-
    memory arena; the kernel never writes into them.
    """
    u_shift = np.uint64(shift)
    mask = np.uint64((1 << index_bits) - 1)
    nterms = len(cols)

    def kernel(r: np.ndarray) -> np.ndarray:
        idx = ((r.view(np.uint64) >> u_shift) & mask).astype(np.intp)
        if nterms > 1:
            u = _pow_small(r, stride)
            acc = cols[nterms - 1].take(idx)
            buf = np.empty_like(acc)
            # in-place steps: same multiply/add per lane, no temporaries
            for t in range(nterms - 2, -1, -1):
                acc *= u
                acc += np.take(cols[t], idx, out=buf)
        else:
            acc = cols[0].take(idx)
        if start:
            acc *= _pow_small(r, start)
        return acc

    return kernel


def compile_piecewise(pp: PiecewisePolynomial) -> Callable:
    """Array kernel for one piecewise polynomial (bit-exact per lane)."""
    if pp.index_bits == 0:
        p0 = pp.polys[0]
        return p0.eval_many

    padded = padded_tables(pp.polys)
    if padded is not None:
        start, stride, cols = padded
        return gathered_kernel(pp.shift, pp.index_bits, start, stride, cols)

    shift = np.uint64(pp.shift)
    mask = np.uint64((1 << pp.index_bits) - 1)

    def indices(r: np.ndarray) -> np.ndarray:
        return ((r.view(np.uint64) >> shift) & mask).astype(np.intp)

    polys = pp.polys

    def kernel(r: np.ndarray) -> np.ndarray:
        idx = indices(r)
        out = np.empty_like(r)
        for i in np.unique(idx):
            sel = idx == i
            out[sel] = polys[i].eval_many(r[sel])
        return out

    return kernel


def compile_approx(af: ApproxFunc) -> Callable:
    """Array kernel mirroring ``ApproxFunc.compiled`` sign dispatch.

    When only one sign's piecewise polynomial exists the compiled scalar
    closure uses it for *every* input with no sign check; the batch
    kernel reproduces exactly that behaviour.
    """
    neg = compile_piecewise(af.neg) if af.neg is not None else None
    pos = compile_piecewise(af.pos) if af.pos is not None else None
    if neg is None:
        return pos
    if pos is None:
        return neg

    def kernel(r: np.ndarray) -> np.ndarray:
        out = np.empty_like(r)
        m = r < 0.0
        if m.any():
            out[m] = neg(r[m])
        m = ~m
        if m.any():
            out[m] = pos(r[m])
        return out

    return kernel
