"""The batch evaluation pipeline: arrays in, correctly rounded arrays out.

:class:`BatchFunction` wraps a generated function and runs the full
runtime pipeline on numpy float64 arrays — special-case masks,
vectorized range reduction, shift+mask sub-domain lookup, gathered
Horner, output compensation, final rounding — with every lane
performing the exact IEEE double operation sequence of the scalar
``evaluate`` / ``evaluate_bits`` path (see DESIGN.md, "Scalar/batch
bit-identity").

Special-case lanes are *compressed out* before range reduction: the
arithmetic kernels only ever see the non-special lanes, so NaN/Inf and
out-of-domain inputs neither poison adjacent lanes nor trip spurious
floating-point warnings, exactly as the scalar path short-circuits
before reducing.
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

from repro.batch.kernels import compile_approx
from repro.batch.rounding import bits_kernel, round_kernel
from repro.obs.profile import phase

__all__ = ["BatchFunction"]

#: cache-blocking width: the pipeline is memory-bound (every stage is a
#: full-array pass over ~a dozen float64 temporaries), so large batches
#: are processed in blocks whose working set stays L2-resident instead
#: of streaming each pass through DRAM — ~2x wall time on 1M-lane
#: sweeps.  Per-lane operation sequences are untouched (each lane sees
#: exactly the ops it would in one full-width pass), so bit-identity is
#: unaffected.  Override for tuning with REPRO_BATCH_BLOCK.
_BLOCK = max(4096, int(os.environ.get("REPRO_BATCH_BLOCK", "32768")))


def _as_input(xs) -> Tuple[np.ndarray, tuple]:
    """Validate and flatten a batch input; returns (flat copy, shape)."""
    arr = np.asarray(xs)
    if arr.dtype != np.float64:
        if arr.dtype.kind in "iuf":
            raise TypeError(
                f"batch inputs must be float64 (got {arr.dtype}); convert "
                "explicitly with xs.astype(np.float64) — an implicit upcast "
                "would silently evaluate different doubles than the caller "
                "holds"
            )
        raise TypeError(f"batch inputs must be float64 (got {arr.dtype})")
    # reshape(-1) yields a contiguous view when possible and a
    # contiguous copy otherwise; the pipeline never writes into it
    return arr.reshape(-1), arr.shape


class BatchFunction:
    """Vectorized twin of a :class:`~repro.core.generator.GeneratedFunction`.

    Built lazily by the ``GeneratedFunction.batch`` property; users
    reach it through ``evaluate_many`` / ``evaluate_bits_many`` or the
    :mod:`repro.api` facade.
    """

    def __init__(self, fn):
        self.fn = fn
        self.rr = fn.spec.rr
        self._kernels = [compile_approx(af) for af in fn._funcs]
        self._round = round_kernel(fn.spec.target)
        self._bits = bits_kernel(fn.spec.target)

    @classmethod
    def from_parts(cls, rr, kernels, target) -> "BatchFunction":
        """Assemble a batch pipeline from prebuilt per-fn kernels.

        The serving workers (:mod:`repro.serve.tables`) rebuild the
        range reduction from its frozen state and the Horner kernels
        from shared-memory coefficient views — no
        :class:`~repro.core.generator.GeneratedFunction` (and no frozen
        data module import) ever exists in the worker.  ``kernels``
        must be in ``rr.fn_names`` order, each mapping a reduced-input
        array to that elementary function's values, exactly like the
        :func:`~repro.batch.kernels.compile_approx` output.
        """
        bf = cls.__new__(cls)
        bf.fn = None
        bf.rr = rr
        bf._kernels = list(kernels)
        bf._round = round_kernel(target)
        bf._bits = bits_kernel(target)
        return bf

    def _compensated(self, xs: np.ndarray) -> np.ndarray:
        """Pipeline output *before* final rounding, per lane.

        Each stage is bracketed with :func:`repro.obs.profile.phase`
        for the opt-in profiler's attribution panel; when no profiler
        is active the brackets are the shared no-op (one global test
        per stage per *batch*, never per element).
        """
        rr = self.rr
        with phase("special"):
            mask, vals = rr.special_batch(xs)
        if not mask.any():                      # common case: no specials
            with phase("reduce"):
                r, ctx = rr.reduce_batch(xs)
            with phase("horner"):
                values = tuple(kernel(r) for kernel in self._kernels)
            with phase("compensate"):
                return rr.compensate_batch(values, ctx)
        out = np.empty_like(xs)
        out[mask] = vals
        rest = ~mask
        xr = xs[rest]
        if xr.size:
            with phase("reduce"):
                r, ctx = rr.reduce_batch(xr)
            with phase("horner"):
                values = tuple(kernel(r) for kernel in self._kernels)
            with phase("compensate"):
                out[rest] = rr.compensate_batch(values, ctx)
        return out

    def _run(self, xs, final, dtype) -> np.ndarray:
        flat, shape = _as_input(xs)
        n = flat.size
        if n <= _BLOCK:
            comp = self._compensated(flat)
            with phase("round"):
                return final(comp).reshape(shape)
        out = np.empty(n, dtype=dtype)
        for i in range(0, n, _BLOCK):
            comp = self._compensated(flat[i:i + _BLOCK])
            with phase("round"):
                out[i:i + _BLOCK] = final(comp)
        return out.reshape(shape)

    def evaluate_many(self, xs) -> np.ndarray:
        """Correctly rounded results (as doubles), same shape as ``xs``."""
        return self._run(xs, self._round, np.float64)

    def evaluate_bits_many(self, xs) -> np.ndarray:
        """Target bit patterns (uint64), same shape as ``xs``."""
        return self._run(xs, self._bits, np.uint64)
