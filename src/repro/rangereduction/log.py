"""Range reduction for the logarithm family (ln, log2, log10).

Classic table-driven reduction (Tang): decompose

    x = 2**e * m,          m in [1, 2)
    m = F * (1 + r),       F = 1 + j/128  (j = top 7 mantissa bits of m)

so that

    log_b(x) = e * log_b(2) + log_b(F) + log_b(1 + r)

with ``r = (m - F) / F`` in ``[0, 1/128)``.  ``m - F`` is exact by
Sterbenz' lemma; the division by F rounds, and the table entries and
``log_b(2)`` constant are rounded doubles — all of which Algorithm 2
absorbs into the reduced intervals because generation runs this very
code.  The reduced elementary function is ``log_b(1 + r)``, approximated
by a polynomial with no constant term (it vanishes at r = 0, which the
reduction produces whenever x = F * 2**e exactly).

Output compensation ``(e * C + TAB[j]) + v`` is monotonically increasing
in v, as Algorithm 2 requires.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.batch.reduce import table
from repro.core.intervals import TargetFormat
from repro.rangereduction.base import RangeReduction, Reduced
from repro.rangereduction.tables import log_scale_constant, log_table

__all__ = ["LogReduction"]

#: top-level function name -> reduced function name
_REDUCED_NAME = {"ln": "log1p", "log2": "log2_1p", "log10": "log10_1p"}


class LogReduction(RangeReduction):
    """ln/log2/log10 via 128-entry log tables."""

    def __init__(self, base: str, target: TargetFormat, table_bits: int = 7,
                 max_degree: int = 6):
        if base not in _REDUCED_NAME:
            raise ValueError(f"base must be ln/log2/log10, got {base!r}")
        self.name = base
        self.target = target
        self.fn_names = (_REDUCED_NAME[base],)
        # log_b(1+r) vanishes at r=0: no constant term.
        self.exponents = (tuple(range(1, max_degree + 1)),)
        self.table_bits = table_bits
        self._entries = 1 << table_bits
        self._tab = log_table(base, table_bits)
        # log2 needs no scale constant (the exponent contributes exactly e)
        self._scale = 1.0 if base == "log2" else log_scale_constant(base)
        self._pure_exponent = base == "log2"

    def special(self, x: float) -> float | None:
        if math.isnan(x):
            return math.nan
        if x == 0.0:
            return -math.inf
        if x < 0.0:
            return math.nan
        if math.isinf(x):
            return math.inf
        return None

    def reduce(self, x: float) -> Reduced:
        m, e2 = math.frexp(x)   # x = m * 2**e2, m in [0.5, 1)
        e = e2 - 1
        m = m * 2.0             # m in [1, 2), exact
        j = int((m - 1.0) * self._entries)   # exact: scale + truncate
        f = 1.0 + j / self._entries
        d = m - f               # exact (Sterbenz)
        r = d / f               # rounds; r in [0, 1/128)
        return Reduced(r + 0.0, (e, j))

    def compensate(self, values: Sequence[float], ctx: tuple) -> float:
        e, j = ctx
        v = values[0]
        if self._pure_exponent:
            return (e + self._tab[j]) + v
        return (e * self._scale + self._tab[j]) + v

    def special_batch(self, xs: np.ndarray):
        mask = np.isnan(xs) | (xs <= 0.0) | np.isinf(xs)
        sub = xs[mask]
        vals = np.where(sub == 0.0, -np.inf, np.nan)
        vals[sub == np.inf] = np.inf
        return mask, vals

    def reduce_batch(self, xs: np.ndarray):
        m, e2 = np.frexp(xs)
        e = e2.astype(np.int64) - 1
        m = m * 2.0
        j = ((m - 1.0) * self._entries).astype(np.int64)
        f = 1.0 + j / self._entries      # exact (power-of-two entries)
        d = m - f                        # exact (Sterbenz)
        r = d / f
        return r + 0.0, (e, j)

    def compensate_batch(self, values, ctx):
        e, j = ctx
        v = values[0]
        t = table(self, "_tab")[j]
        if self._pure_exponent:
            return (e + t) + v
        return (e * self._scale + t) + v

    def make_fast_evaluate(self, funcs, rnd):
        """Inlined hot path (bit-identical to special/reduce/compensate)."""
        f0 = funcs[0]
        tab = self._tab
        entries = float(self._entries)
        inv_entries = 1.0 / self._entries   # exact (power of two)
        scale = self._scale
        pure = self._pure_exponent
        special = self.special
        frexp = math.frexp
        inf = math.inf

        def evaluate(x: float) -> float:
            if 0.0 < x < inf:               # NaN fails both comparisons
                m, e2 = frexp(x)
                m = m * 2.0
                j = int((m - 1.0) * entries)
                f = 1.0 + j * inv_entries
                r = (m - f) / f
                if pure:
                    return rnd(((e2 - 1) + tab[j]) + f0(r))
                return rnd(((e2 - 1) * scale + tab[j]) + f0(r))
            return rnd(special(x))

        return evaluate
