"""Range reductions for sinpi and cospi (paper sections 2 and 5).

Both reduce through periodicity and reflection to L' in [0, 1/2], then to
a table index N and a fractional reduced input in [0, 1/512], and both
need *two* reduced elementary functions — sinpi(R) and cospi(R):

* **sinpi** (section 2):  L' = N/512 + R, and

      sinpi(x) = S * ( sinpi(N/512) cospi(R) + cospi(N/512) sinpi(R) )

  with S = (-1)**K from periodicity.  Every reduction step (fmod by 2,
  integer split, reflection 1-L, scaling by 512, the final subtraction)
  is exact in double.

* **cospi** (section 5): the naive identity
  ``cospi(a+b) = cospi(a)cospi(b) - sinpi(a)sinpi(b)`` mixes signs, so
  output compensation would be non-monotonic and suffer cancellation.
  The paper's fix, reproduced here: for N != 0 shift the table index to
  N' = N + 1 and use R = 1/512 - Q (exact), giving

      cospi(x) = S * ( cospi(N'/512) cospi(R) + sinpi(N'/512) sinpi(R) )

  where both table entries are non-negative — a monotonic, cancellation
  free compensation.  For N == 0 the same formula applies with N' = 0
  (cospi(0)=1, sinpi(0)=0) and R = Q directly.

Large inputs are special-cased: every float32 with |x| >= 2**23 is an
integer, so sinpi is a (signed) zero and cospi is +-1 by parity.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.batch.reduce import table
from repro.core.intervals import TargetFormat
from repro.posit.format import PositFormat
from repro.rangereduction.base import RangeReduction, Reduced
from repro.rangereduction.tables import sinpicospi_tables

__all__ = ["SinPiReduction", "CosPiReduction"]

_BIG = 2.0 ** 23


def _split_to_half(ax: float) -> tuple[int, int, float]:
    """Common exact reduction: |x| -> (K, M, L') with L' in [0, 1/2].

    K is the periodicity flip (J >= 1), M the reflection flip (L > 1/2).
    All arithmetic is exact in double.
    """
    j = math.fmod(ax, 2.0)        # exact by definition of fmod
    if j >= 1.0:
        k = 1
        l = j - 1.0               # exact (Sterbenz)
    else:
        k = 0
        l = j
    if l > 0.5:
        m = 1
        l2 = 1.0 - l              # exact (Sterbenz)
    else:
        m = 0
        l2 = l
    return k, m, l2


def _split_table(l2: float) -> tuple[int, float]:
    """L' -> (N, Q) with N in 0..255 and Q = L' - N/512 in [0, 1/512]."""
    n = int(l2 * 512.0)           # exact scaling + truncation
    if n > 255:
        n = 255                   # L' == 1/2 exactly -> N=255, Q=1/512
    q = l2 - n * 0.001953125      # exact
    return n, q


def _split_to_half_batch(ax: np.ndarray):
    """Array version of :func:`_split_to_half`: (K, M, L') as arrays."""
    j = np.fmod(ax, 2.0)
    ge1 = j >= 1.0
    l = np.where(ge1, j - 1.0, j)
    refl = l > 0.5
    l2 = np.where(refl, 1.0 - l, l)
    return ge1, refl, l2


def _split_table_batch(l2: np.ndarray):
    """Array version of :func:`_split_table`: (N, Q) as arrays."""
    n = np.minimum((l2 * 512.0).astype(np.int64), 255)
    q = l2 - n * 0.001953125
    return n, q


class SinPiReduction(RangeReduction):
    """sinpi via periodicity + 512-entry tables (section 2)."""

    name = "sinpi"
    fn_names = ("sinpi", "cospi")

    def __init__(self, target: TargetFormat, max_degree: int = 7):
        self.target = target
        odd = tuple(range(1, max_degree + 1, 2))
        even = tuple(range(0, max_degree + 1, 2))
        self.exponents = (odd, even)
        self._sin_t, self._cos_t = sinpicospi_tables(256)

    def special(self, x: float) -> float | None:
        if math.isnan(x) or math.isinf(x):
            return math.nan
        if x == 0.0:
            return x              # sinpi(+-0) = +-0
        if abs(x) >= _BIG:
            return math.copysign(0.0, x)   # every such value is an integer
        return None

    def reduce(self, x: float) -> Reduced:
        ax = abs(x)
        k, _m, l2 = _split_to_half(ax)
        n, r = _split_table(l2)
        sgn = -1.0 if ((x < 0.0) != (k == 1)) else 1.0
        return Reduced(r + 0.0, (n, sgn))

    def compensate(self, values: Sequence[float], ctx: tuple) -> float:
        n, sgn = ctx
        vs, vc = values
        # + 0.0 flushes a -0 product to +0, matching the oracle's zero
        # convention for non-special exact zeros (e.g. sinpi(-2)).
        return sgn * (self._sin_t[n] * vc + self._cos_t[n] * vs) + 0.0

    def special_batch(self, xs: np.ndarray):
        ax = np.abs(xs)
        bad = np.isnan(xs) | np.isinf(xs)
        mask = bad | (xs == 0.0) | (ax >= _BIG)
        sub = xs[mask]
        # x == +-0 keeps its sign; huge values are integers -> signed zero
        vals = np.where(np.abs(sub) >= _BIG, np.copysign(0.0, sub), sub)
        vals[bad[mask]] = np.nan
        return mask, vals

    def reduce_batch(self, xs: np.ndarray):
        ax = np.abs(xs)
        ge1, _refl, l2 = _split_to_half_batch(ax)
        n, r = _split_table_batch(l2)
        sgn = np.where((xs < 0.0) != ge1, -1.0, 1.0)
        return r + 0.0, (n, sgn)

    def compensate_batch(self, values, ctx):
        n, sgn = ctx
        vs, vc = values
        st = table(self, "_sin_t")[n]
        ct = table(self, "_cos_t")[n]
        return sgn * (st * vc + ct * vs) + 0.0

    def make_fast_evaluate(self, funcs, rnd):
        """Inlined hot path (bit-identical to special/reduce/compensate)."""
        fs, fc = funcs
        sin_t = self._sin_t
        cos_t = self._cos_t
        special = self.special
        fmod = math.fmod

        def evaluate(x: float) -> float:
            ax = abs(x)
            if 0.0 < ax < _BIG:                # NaN/inf/0/huge fall through
                j = fmod(ax, 2.0)
                if j >= 1.0:
                    k1 = x >= 0.0              # sign flip parity
                    l = j - 1.0
                else:
                    k1 = x < 0.0
                    l = j
                l2 = 1.0 - l if l > 0.5 else l
                n = int(l2 * 512.0)
                if n > 255:
                    n = 255
                r = l2 - n * 0.001953125 + 0.0
                y = sin_t[n] * fc(r) + cos_t[n] * fs(r)
                return rnd((-y if k1 else y) + 0.0)
            return rnd(special(x))

        return evaluate


class CosPiReduction(RangeReduction):
    """cospi via the monotonic N' = N+1 reduction (section 5)."""

    name = "cospi"
    fn_names = ("sinpi", "cospi")

    def __init__(self, target: TargetFormat, max_degree: int = 7):
        self.target = target
        odd = tuple(range(1, max_degree + 1, 2))
        even = tuple(range(0, max_degree + 1, 2))
        self.exponents = (odd, even)
        self._sin_t, self._cos_t = sinpicospi_tables(256)

    def special(self, x: float) -> float | None:
        if math.isnan(x) or math.isinf(x):
            return math.nan
        ax = abs(x)
        if ax >= _BIG:
            if ax >= 2.0 ** 24:
                return 1.0        # spacing >= 2: every value is even
            return 1.0 if int(ax) % 2 == 0 else -1.0
        return None

    #: Same classification threshold/cap as ExpReduction (see exp.py for
    #: the LP-vertex-drift rationale behind the numbers).
    _GRAZE_THRESHOLD = 3e-5
    _GRAZE_CAP = 24576

    def hard_input_candidates(self) -> list[float]:
        """Every representable input grazing a midpoint in the N=0 band.

        For 0 < x < 1/512 the reduction is the identity (N = 0, R = x)
        and compensation multiplies by cospi(0) = 1: the cospi
        polynomial alone decides roundings in a band where thousands of
        inputs share each output ordinal just below 1.0 — the exact
        analogue of the exp-family k=0 band.  Walk every output
        midpoint m in (cospi(1/512), 1] and invert it: the preimage is
        x* = acos(m)/pi (m is an exact double, libm acos carries ~1 ulp
        relative error — orders of magnitude below the distances being
        classified).  Negative inputs reduce to the same R by evenness,
        so positive candidates constrain both signs.

        IEEE targets only, for the same reasons as ExpReduction: no
        posit near-1 cospi miss has ever been mined, and posit bands
        are large enough to over-constrain generation (see ROADMAP).
        """
        fmt = self.target
        if isinstance(fmt, PositFormat):
            return []
        # generation-time enumeration: candidates need ~2**-30 accuracy,
        # not correct rounding, so plain math.* is fine here
        lo_bits = fmt.from_double(math.cos(math.pi / 512.0))  # fplint: disable=FP102
        hi_bits = fmt.from_double(1.0)
        scored: list[tuple[float, float]] = []
        seen: set[int] = set()
        bits = lo_bits
        y = fmt.to_double(bits)
        while bits != hi_bits:
            nbits = fmt.next_up(bits)
            ny = fmt.to_double(nbits)
            width = ny - y
            m = y + width / 2.0
            x_star = math.acos(m) / math.pi  # fplint: disable=FP102
            deriv = math.pi * math.sin(math.pi * x_star)  # fplint: disable=FP102
            xb = fmt.from_double(x_star)
            up, down = fmt.next_up, fmt.next_down
            for cb, step in ((xb, up), (down(xb), down)):
                while True:
                    x = fmt.to_double(cb)
                    d = abs(x - x_star) * deriv / width
                    if d >= self._GRAZE_THRESHOLD:
                        break
                    if cb not in seen and self.special(x) is None:
                        seen.add(cb)
                        scored.append((d, x))
                    cb = step(cb)
            bits, y = nbits, ny
        scored.sort(key=lambda t: t[0])
        return [x for _, x in scored[: self._GRAZE_CAP]]

    def reduce(self, x: float) -> Reduced:
        ax = abs(x)               # cospi is even
        k, m, l2 = _split_to_half(ax)
        n, q = _split_table(l2)
        sgn = -1.0 if (k + m) % 2 else 1.0
        if n == 0:
            return Reduced(q + 0.0, (0, sgn))
        n2 = n + 1
        r = n2 * 0.001953125 - l2   # == 1/512 - Q, exact (Sterbenz)
        return Reduced(r + 0.0, (n2, sgn))

    def compensate(self, values: Sequence[float], ctx: tuple) -> float:
        n, sgn = ctx
        vs, vc = values
        return sgn * (self._cos_t[n] * vc + self._sin_t[n] * vs) + 0.0

    def special_batch(self, xs: np.ndarray):
        ax = np.abs(xs)
        bad = np.isnan(xs) | np.isinf(xs)
        mask = bad | (ax >= _BIG)
        asub = ax[mask]
        vals = np.ones(asub.shape, dtype=np.float64)
        # parity only decides below 2**24 (above it every value is even);
        # computed on those lanes alone so the int64 conversion is exact
        par = np.isfinite(asub) & (asub < 2.0 ** 24)
        if par.any():
            odd = asub[par].astype(np.int64) & 1
            vals[par] = np.where(odd == 1, -1.0, 1.0)
        vals[bad[mask]] = np.nan
        return mask, vals

    def reduce_batch(self, xs: np.ndarray):
        ax = np.abs(xs)
        ge1, refl, l2 = _split_to_half_batch(ax)
        n, q = _split_table_batch(l2)
        sgn = np.where(ge1 != refl, -1.0, 1.0)   # (K + M) % 2
        nz = n != 0
        n2 = np.where(nz, n + 1, 0)
        r = np.where(nz, (n + 1) * 0.001953125 - l2, q)
        return r + 0.0, (n2, sgn)

    def compensate_batch(self, values, ctx):
        n, sgn = ctx
        vs, vc = values
        st = table(self, "_sin_t")[n]
        ct = table(self, "_cos_t")[n]
        return sgn * (ct * vc + st * vs) + 0.0

    def make_fast_evaluate(self, funcs, rnd):
        """Inlined hot path (bit-identical to special/reduce/compensate)."""
        fs, fc = funcs
        sin_t = self._sin_t
        cos_t = self._cos_t
        special = self.special
        fmod = math.fmod

        def evaluate(x: float) -> float:
            ax = abs(x)
            if ax < _BIG:                      # NaN/inf/huge fall through
                j = fmod(ax, 2.0)
                if j >= 1.0:
                    flip = True
                    l = j - 1.0
                else:
                    flip = False
                    l = j
                if l > 0.5:
                    flip = not flip
                    l2 = 1.0 - l
                else:
                    l2 = l
                n = int(l2 * 512.0)
                if n > 255:
                    n = 255
                q = l2 - n * 0.001953125
                if n == 0:
                    r = q + 0.0
                else:
                    n = n + 1
                    r = n * 0.001953125 - l2 + 0.0
                y = cos_t[n] * fc(r) + sin_t[n] * fs(r)
                return rnd((-y if flip else y) + 0.0)
            return rnd(special(x))

        return evaluate
