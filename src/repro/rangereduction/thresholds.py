"""Special-case threshold discovery.

The paper hardcodes per-function special-case boundaries (e.g. ``exp``
overflows to +inf for all float inputs above some cut-off; posit
functions saturate to maxpos/minpos instead).  Because our pipeline is
generic over target formats, we *derive* each boundary with a bisection
over target ordinals against the oracle: given a predicate that is
monotone along the value order (true on one side of the boundary), ~30
oracle queries pin down the exact pair of adjacent target values where it
flips.
"""

from __future__ import annotations

from typing import Callable

from repro.core.intervals import TargetFormat
from repro.core.sampling import value_to_ordinal

__all__ = ["ordinal_boundary", "result_equals", "max_finite"]


def max_finite(fmt: TargetFormat) -> float:
    """Largest finite (non-special) value of the format, as a double."""
    from repro.core.sampling import ordinal_limit
    return fmt.to_double(fmt.from_ordinal(ordinal_limit(fmt)))


def ordinal_boundary(
    fmt: TargetFormat,
    pred: Callable[[float], bool],
    x_true: float,
    x_false: float,
) -> tuple[float, float]:
    """Locate where a monotone predicate flips between two target values.

    ``pred`` must hold at ``x_true``, fail at ``x_false``, and flip
    exactly once along the ordinal path between them.  Returns
    ``(last_true, first_false)`` as adjacent target values (doubles).
    """
    o_true = value_to_ordinal(fmt, x_true)
    o_false = value_to_ordinal(fmt, x_false)
    if o_true == o_false:
        raise ValueError("x_true and x_false map to the same target value")

    def val(o: int) -> float:
        return fmt.to_double(fmt.from_ordinal(o))

    if not pred(val(o_true)):
        raise ValueError(f"predicate must hold at x_true={x_true!r}")
    if pred(val(o_false)):
        raise ValueError(f"predicate must fail at x_false={x_false!r}")

    while abs(o_false - o_true) > 1:
        mid = (o_true + o_false) // 2
        if pred(val(mid)):
            o_true = mid
        else:
            o_false = mid
    return val(o_true), val(o_false)


def result_equals(fn_name: str, fmt: TargetFormat, want_bits: int,
                  oracle) -> Callable[[float], bool]:
    """Predicate: the correctly rounded result of fn(x) has these bits."""

    def pred(x: float) -> bool:
        return oracle.round_to_bits(fn_name, x, fmt) == want_bits

    return pred
