"""Range reductions and output compensations for every library function."""

from __future__ import annotations

from repro.core.intervals import TargetFormat
from repro.rangereduction.base import RangeReduction, RangeReductionError, Reduced
from repro.rangereduction.exp import ExpReduction
from repro.rangereduction.log import LogReduction
from repro.rangereduction.sinhcosh import SinhCoshReduction
from repro.rangereduction.sinpicospi import CosPiReduction, SinPiReduction

__all__ = [
    "RangeReduction", "RangeReductionError", "Reduced",
    "ExpReduction", "LogReduction", "SinhCoshReduction",
    "CosPiReduction", "SinPiReduction", "reduction_for",
]


def reduction_for(name: str, target: TargetFormat, **kwargs) -> RangeReduction:
    """Build the paper's range reduction for a function name and target."""
    if name in ("ln", "log2", "log10"):
        return LogReduction(name, target, **kwargs)
    if name in ("exp", "exp2", "exp10"):
        return ExpReduction(name, target, **kwargs)
    if name in ("sinh", "cosh"):
        return SinhCoshReduction(name, target, **kwargs)
    if name == "sinpi":
        return SinPiReduction(target, **kwargs)
    if name == "cospi":
        return CosPiReduction(target, **kwargs)
    raise ValueError(f"no range reduction registered for {name!r}")
