"""Range reduction for sinh and cosh — two reduced elementary functions.

Decompose |x| = k/64 + R with k = round(64|x|); both k/64 and the
subtraction are exact in double.  The addition identities

    sinh(m + R) = sinh(m) cosh(R) + cosh(m) sinh(R)
    cosh(m + R) = cosh(m) cosh(R) + sinh(m) sinh(R)

turn the problem into approximating *two* functions of the reduced input,
sinh(R) (odd) and cosh(R) (even), over R in [-1/128, 1/128] — the very
case that motivates Algorithm 2's simultaneous interval deduction: the
paper notes that reducing sinh/cosh any other way gives the LP
condition-number trouble.  Table entries sinh(k/64), cosh(k/64) are
correctly rounded doubles; both compensation formulas are monotonically
increasing in both values (all table entries are non-negative; the odd
symmetry of sinh is handled by a sign in the context, which flips the
direction uniformly — still monotone as Algorithm 2 requires).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.batch.reduce import table
from repro.core.intervals import TargetFormat
from repro.fp.formats import FloatFormat
from repro.oracle.mpmath_oracle import Oracle, default_oracle
from repro.posit.format import PositFormat
from repro.rangereduction.base import RangeReduction, Reduced
from repro.rangereduction.tables import sinhcosh_tables
from repro.rangereduction.thresholds import (max_finite, ordinal_boundary,
                                             result_equals)

__all__ = ["SinhCoshReduction"]


class SinhCoshReduction(RangeReduction):
    """sinh/cosh via sinh(k/64)/cosh(k/64) tables."""

    def __init__(self, which: str, target: TargetFormat,
                 max_degree: int = 5, oracle: Oracle = default_oracle):
        if which not in ("sinh", "cosh"):
            raise ValueError(f"which must be sinh or cosh, got {which!r}")
        self.name = which
        self.target = target
        self.fn_names = ("sinh", "cosh")
        # sinh(R) is odd, cosh(R) is even
        odd = tuple(range(1, max_degree + 1, 2))
        even = tuple(range(0, max_degree + 1, 2))
        self.exponents = (odd, even)
        self._is_sinh = which == "sinh"
        self._saturating = isinstance(target, PositFormat)

        if self._saturating:
            hi_bits = target.maxpos_bits
            self._hi_result = target.to_double(hi_bits)
        else:
            assert isinstance(target, FloatFormat)
            hi_bits = target.inf_bits
            self._hi_result = math.inf
        big = min(4096.0, max_finite(target))
        _, first_hi = ordinal_boundary(
            target,
            lambda x: not result_equals(which, target, hi_bits, oracle)(x),
            x_true=1.0, x_false=big)
        self._hi_thr = first_hi

        kmax = int(round(self._hi_thr * 64.0))
        self._sinh_t, self._cosh_t = sinhcosh_tables(kmax)

    def special(self, x: float) -> float | None:
        if math.isnan(x):
            return math.nan
        ax = abs(x)
        if ax >= self._hi_thr:
            if self._is_sinh:
                return math.copysign(self._hi_result, x)
            return self._hi_result
        if x == 0.0:
            # sinh(+-0) = +-0 exactly; cosh(+-0) = 1 exactly
            return x if self._is_sinh else 1.0
        return None

    def reduce(self, x: float) -> Reduced:
        s = abs(x)
        k = round(s * 64.0)
        r = s - k / 64.0          # exact (Sterbenz / scaling)
        sgn = -1.0 if (self._is_sinh and x < 0.0) else 1.0
        return Reduced(r + 0.0, (k, sgn))

    def compensate(self, values: Sequence[float], ctx: tuple) -> float:
        k, sgn = ctx
        vs, vc = values
        if self._is_sinh:
            return sgn * (self._sinh_t[k] * vc + self._cosh_t[k] * vs)
        return self._cosh_t[k] * vc + self._sinh_t[k] * vs

    def special_batch(self, xs: np.ndarray):
        ax = np.abs(xs)
        mask = np.isnan(xs) | (ax >= self._hi_thr) | (xs == 0.0)
        sub = xs[mask]
        asub = np.abs(sub)
        if self._is_sinh:
            vals = np.where(asub >= self._hi_thr,
                            np.copysign(self._hi_result, sub), sub)
        else:
            vals = np.where(asub >= self._hi_thr, self._hi_result, 1.0)
        vals[np.isnan(sub)] = np.nan
        return mask, vals

    def reduce_batch(self, xs: np.ndarray):
        s = np.abs(xs)
        k = np.rint(s * 64.0)
        r = s - k / 64.0          # exact, as in the scalar path
        if self._is_sinh:
            sgn = np.where(xs < 0.0, -1.0, 1.0)
        else:
            sgn = np.ones_like(xs)
        return r + 0.0, (k.astype(np.int64), sgn)

    def compensate_batch(self, values, ctx):
        k, sgn = ctx
        vs, vc = values
        st = table(self, "_sinh_t")[k]
        ct = table(self, "_cosh_t")[k]
        if self._is_sinh:
            return sgn * (st * vc + ct * vs)
        return ct * vc + st * vs

    def make_fast_evaluate(self, funcs, rnd):
        """Inlined hot path (bit-identical to special/reduce/compensate)."""
        fs, fc = funcs
        sinh_t = self._sinh_t
        cosh_t = self._cosh_t
        hi_thr = self._hi_thr
        is_sinh = self._is_sinh
        special = self.special

        def evaluate(x: float) -> float:
            s = abs(x)
            if 0.0 < s < hi_thr:               # NaN/0/overflow fall through
                k = round(s * 64.0)
                r = s - k * 0.015625 + 0.0
                vs = fs(r)
                vc = fc(r)
                if is_sinh:
                    y = sinh_t[k] * vc + cosh_t[k] * vs
                    return rnd(-y if x < 0.0 else y)
                return rnd(cosh_t[k] * vc + sinh_t[k] * vs)
            return rnd(special(x))

        return evaluate
