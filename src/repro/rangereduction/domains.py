"""Sampling domains and boundary centers for each library function.

Shared by the generation driver (:mod:`repro.libm.genlib`) and the
evaluation harness: the *interesting* input range of a function (the
finite inputs its special-case layer does not answer outright) and the
structural points whose target-ordinal neighbourhoods deserve exhaustive
coverage.
"""

from __future__ import annotations

import math

from repro.core.intervals import TargetFormat
from repro.fp.float32 import FLT_MAX, FLT_MIN_SUBNORMAL
from repro.posit.format import PositFormat
from repro.rangereduction.base import RangeReduction

__all__ = ["sampling_domain", "boundary_centers"]


def sampling_domain(name: str, fmt: TargetFormat,
                    rr: RangeReduction) -> tuple[float, float]:
    """Interesting (non-special) input range to sample for this function."""
    if name in ("ln", "log2", "log10"):
        if isinstance(fmt, PositFormat):
            return float(fmt.minpos), float(fmt.maxpos)
        return FLT_MIN_SUBNORMAL, FLT_MAX
    if name in ("exp", "exp2", "exp10"):
        return rr._lo_thr, rr._hi_thr
    if name in ("sinh", "cosh"):
        return -rr._hi_thr, rr._hi_thr
    # sinpi/cospi: beyond 2**23 everything is an integer special case
    return -(2.0 ** 23), 2.0 ** 23


def boundary_centers(name: str, rr: RangeReduction, lo: float,
                     hi: float) -> list[float]:
    """Special-case boundaries and structural points to pool around."""
    base = [lo, hi, 1.0, -1.0, 2.0, 0.5]
    if name in ("sinpi", "cospi"):
        base += [k / 2.0 for k in range(-8, 9)]
        base += [k / 512.0 for k in (1, 255, 256, 257)]
    if name in ("exp", "exp2", "exp10", "sinh", "cosh"):
        # gen-time pool seeding only: these centers merely *locate* the
        # sampling clusters, so an approximate ln(2) is fine
        base += [-0.01, 0.01]
        base += [math.log(2), -math.log(2)]  # fplint: disable=FP102
    return [c for c in base if lo <= c <= hi]
