"""Lookup tables used by the range reductions.

Every table entry is the *correctly rounded double* of the relevant
elementary function at an exactly representable node — computed through
the oracle, exactly as RLIBM-32 precomputes its tables with MPFR.  The
numerical error of using a rounded table entry inside output compensation
is absorbed by Algorithm 2, because generation evaluates the very same
compensation code with the very same table.

Tables are cached per parameterization; the generator tools freeze them
into the shipped data modules.
"""

from __future__ import annotations

from functools import lru_cache

from repro.oracle.mpmath_oracle import default_oracle

__all__ = [
    "exp2_fraction_table",
    "log_table",
    "log_scale_constant",
    "sinhcosh_tables",
    "sinpicospi_tables",
]


@lru_cache(maxsize=None)
def exp2_fraction_table(entries: int = 64) -> tuple[float, ...]:
    """T[j] = RN_double(2**(j/entries)) for the exp-family reduction."""
    return tuple(default_oracle.round_to_double("exp2", j / entries)
                 for j in range(entries))


@lru_cache(maxsize=None)
def log_table(base: str, table_bits: int = 7) -> tuple[float, ...]:
    """TAB[j] = RN_double(log_base(1 + j/2**table_bits)).

    ``base`` is one of "ln", "log2", "log10".  Entry 0 is exactly 0.0.
    """
    n = 1 << table_bits
    out = []
    for j in range(n):
        f = 1.0 + j / n
        if j == 0:
            out.append(0.0)
        else:
            out.append(default_oracle.round_to_double(base, f))
    return tuple(out)


@lru_cache(maxsize=None)
def log_scale_constant(base: str) -> float:
    """RN_double(log_base(2)), the per-exponent-step constant."""
    return default_oracle.round_to_double(base, 2.0)


@lru_cache(maxsize=None)
def sinhcosh_tables(kmax: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """(sinh(k/64), cosh(k/64)) for k = 0..kmax, correctly rounded."""
    sinh_t = [0.0]
    cosh_t = [1.0]
    for k in range(1, kmax + 1):
        m = k / 64.0
        sinh_t.append(default_oracle.round_to_double("sinh", m))
        cosh_t.append(default_oracle.round_to_double("cosh", m))
    return tuple(sinh_t), tuple(cosh_t)


@lru_cache(maxsize=None)
def sinpicospi_tables(entries: int = 256) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """(sinpi(N/512), cospi(N/512)) for N = 0..entries, correctly rounded.

    ``entries=256`` covers N' up to 256 = cospi's shifted index (section 5).
    """
    sin_t = []
    cos_t = []
    for n in range(entries + 1):
        x = n / 512.0
        sin_t.append(default_oracle.round_to_double("sinpi", x))
        cos_t.append(default_oracle.round_to_double("cospi", x))
    return tuple(sin_t), tuple(cos_t)
