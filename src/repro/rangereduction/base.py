"""Range reduction / output compensation interface.

A :class:`RangeReduction` bundles the three pieces the paper associates
with each elementary function f:

* ``special(x)`` — the special-case layer: NaN/inf propagation, domain
  errors, overflow/saturation thresholds and the tiny-input shortcuts
  (e.g. ``sinpi(x) = round(pi*x)`` for ``|x| < 1.17e-7``).  When it
  returns a value, that value **is** the final double-precision answer
  (to be rounded to T); the generator excludes such inputs from the
  constraint set.
* ``reduce(x)`` — the range reduction RR_H, performed in double exactly
  as the runtime will perform it.  It returns the reduced input ``r``
  plus an opaque *compensation context* (table entries, signs, exponent
  shifts) that output compensation needs.
* ``compensate(values, ctx)`` — the output compensation OC_H: combines
  approximations of the reduced elementary functions (one value per name
  in :attr:`fn_names`, in order) into the answer for the original input.
  It must be monotonic in each value, all in the same direction — the
  requirement of Algorithm 2.

Crucially, ``reduce`` and ``compensate`` are *the same code at generation
time and at runtime*: every numerical error they commit is thereby baked
into the reduced rounding intervals, which is the core idea that lets the
generated polynomials produce correctly rounded results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple, Sequence

import numpy as np

__all__ = ["Reduced", "RangeReduction", "RangeReductionError"]


class RangeReductionError(RuntimeError):
    """Output compensation cannot reach the rounding interval.

    The paper's remedy: redesign the range reduction or increase the
    precision of H (Algorithm 2, line 8).
    """


class Reduced(NamedTuple):
    """A reduced input with its output-compensation context.

    A NamedTuple, not a dataclass: one is constructed per library call on
    the runtime hot path.
    """

    r: float
    ctx: tuple


class RangeReduction(ABC):
    """One function's special cases, reduction and output compensation."""

    #: Name of the elementary function being implemented (oracle name).
    name: str
    #: Oracle names of the reduced elementary functions f_i, in the order
    #: ``compensate`` expects their values.
    fn_names: tuple[str, ...]
    #: Monomial exponents to use when approximating each f_i (odd/even
    #: structure); parallel to fn_names.
    exponents: tuple[tuple[int, ...], ...]

    @abstractmethod
    def special(self, x: float) -> float | None:
        """Final answer for special-case inputs, else None."""

    @abstractmethod
    def reduce(self, x: float) -> Reduced:
        """Range-reduce a non-special input (double arithmetic)."""

    @abstractmethod
    def compensate(self, values: Sequence[float], ctx: tuple) -> float:
        """Output compensation (double arithmetic, monotone per value)."""

    def exponents_for(self, fn_name: str) -> tuple[int, ...]:
        """Monomial structure for one reduced function."""
        return self.exponents[self.fn_names.index(fn_name)]

    def hard_input_candidates(self) -> list[float]:
        """Exhaustively enumerated hard inputs, if the reduction has any.

        Some reductions have a band where many representable inputs map
        onto every output ordinal (exp near 0: the k = 0 band compensates
        nothing, and hundreds of inputs share each result near 1.0).
        Random hard-case mining cannot cover such a band densely, so the
        generated polynomial can ship a wrong rounding on an unsampled
        graze.  Reductions with such a band override this to enumerate
        the *complete* family by walking every output midpoint in the
        band and keeping the representable preimages that graze it; the
        generator folds them into the constraint set.  Default: none.
        """
        return []

    # -- batch interface ---------------------------------------------------
    #
    # Array counterparts of special/reduce/compensate used by
    # :class:`repro.batch.engine.BatchFunction`.  Contract (per lane, the
    # exact double operation sequence of the scalar method):
    #
    # * ``special_batch(xs)`` returns ``(mask, vals)`` — a boolean mask of
    #   special-case lanes plus their final values *compressed* to the
    #   masked lanes (``len(vals) == mask.sum()``).
    # * ``reduce_batch(xs)`` is only ever called on non-special lanes and
    #   returns ``(rs, ctx)``; ``ctx`` is opaque to the engine and handed
    #   verbatim to ``compensate_batch`` (the vectorized overrides use
    #   tuples of parallel arrays where the scalar path used tuples of
    #   scalars).
    # * ``compensate_batch(values, ctx)`` combines one value array per
    #   name in :attr:`fn_names` into the compensated answers.
    #
    # The generic versions below simply loop over the scalar methods —
    # trivially bit-identical, merely not fast.  The shipped reductions
    # override all three with vectorized code.

    def special_batch(self, xs: np.ndarray):
        """Batch special cases: (mask, values-at-masked-lanes)."""
        mask = np.zeros(xs.shape, dtype=bool)
        vals = []
        for i, x in enumerate(xs.tolist()):
            s = self.special(x)
            if s is not None:
                mask[i] = True
                vals.append(s)
        return mask, np.array(vals, dtype=np.float64)

    def reduce_batch(self, xs: np.ndarray):
        """Batch range reduction of non-special lanes: (rs, ctx)."""
        rs = np.empty_like(xs)
        ctxs = []
        for i, x in enumerate(xs.tolist()):
            r, ctx = self.reduce(x)
            rs[i] = r
            ctxs.append(ctx)
        return rs, ctxs

    def compensate_batch(self, values: Sequence[np.ndarray], ctx):
        """Batch output compensation (ctx as built by reduce_batch)."""
        cols = [v.tolist() for v in values]
        out = np.empty(len(ctx), dtype=np.float64)
        for i, c in enumerate(ctx):
            out[i] = self.compensate(tuple(col[i] for col in cols), c)
        return out

    def make_fast_evaluate(self, funcs: Sequence, rnd):
        """Build the runtime hot-path closure for this reduction.

        ``funcs`` are the compiled approximations of the reduced
        elementary functions (in :attr:`fn_names` order) and ``rnd`` the
        final rounding RN_T.  The generic version composes the
        special/reduce/compensate methods; subclasses override it with a
        fully inlined straight-line path (the Python analogue of the C
        functions RLIBM-32 emits) that is *bit-identical* to the generic
        composition — tests assert this exhaustively on small formats.
        """
        special = self.special
        reduce = self.reduce
        compensate = self.compensate
        if len(funcs) == 1:
            f0 = funcs[0]

            def evaluate(x: float) -> float:
                s = special(x)
                if s is not None:
                    return rnd(s)
                r, ctx = reduce(x)
                return rnd(compensate((f0(r),), ctx))
        else:
            f0, f1 = funcs

            def evaluate(x: float) -> float:
                s = special(x)
                if s is not None:
                    return rnd(s)
                r, ctx = reduce(x)
                return rnd(compensate((f0(r), f1(r)), ctx))

        return evaluate

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeReduction({self.name})"
