"""Range reduction / output compensation interface.

A :class:`RangeReduction` bundles the three pieces the paper associates
with each elementary function f:

* ``special(x)`` — the special-case layer: NaN/inf propagation, domain
  errors, overflow/saturation thresholds and the tiny-input shortcuts
  (e.g. ``sinpi(x) = round(pi*x)`` for ``|x| < 1.17e-7``).  When it
  returns a value, that value **is** the final double-precision answer
  (to be rounded to T); the generator excludes such inputs from the
  constraint set.
* ``reduce(x)`` — the range reduction RR_H, performed in double exactly
  as the runtime will perform it.  It returns the reduced input ``r``
  plus an opaque *compensation context* (table entries, signs, exponent
  shifts) that output compensation needs.
* ``compensate(values, ctx)`` — the output compensation OC_H: combines
  approximations of the reduced elementary functions (one value per name
  in :attr:`fn_names`, in order) into the answer for the original input.
  It must be monotonic in each value, all in the same direction — the
  requirement of Algorithm 2.

Crucially, ``reduce`` and ``compensate`` are *the same code at generation
time and at runtime*: every numerical error they commit is thereby baked
into the reduced rounding intervals, which is the core idea that lets the
generated polynomials produce correctly rounded results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple, Sequence

__all__ = ["Reduced", "RangeReduction", "RangeReductionError"]


class RangeReductionError(RuntimeError):
    """Output compensation cannot reach the rounding interval.

    The paper's remedy: redesign the range reduction or increase the
    precision of H (Algorithm 2, line 8).
    """


class Reduced(NamedTuple):
    """A reduced input with its output-compensation context.

    A NamedTuple, not a dataclass: one is constructed per library call on
    the runtime hot path.
    """

    r: float
    ctx: tuple


class RangeReduction(ABC):
    """One function's special cases, reduction and output compensation."""

    #: Name of the elementary function being implemented (oracle name).
    name: str
    #: Oracle names of the reduced elementary functions f_i, in the order
    #: ``compensate`` expects their values.
    fn_names: tuple[str, ...]
    #: Monomial exponents to use when approximating each f_i (odd/even
    #: structure); parallel to fn_names.
    exponents: tuple[tuple[int, ...], ...]

    @abstractmethod
    def special(self, x: float) -> float | None:
        """Final answer for special-case inputs, else None."""

    @abstractmethod
    def reduce(self, x: float) -> Reduced:
        """Range-reduce a non-special input (double arithmetic)."""

    @abstractmethod
    def compensate(self, values: Sequence[float], ctx: tuple) -> float:
        """Output compensation (double arithmetic, monotone per value)."""

    def exponents_for(self, fn_name: str) -> tuple[int, ...]:
        """Monomial structure for one reduced function."""
        return self.exponents[self.fn_names.index(fn_name)]

    def make_fast_evaluate(self, funcs: Sequence, rnd):
        """Build the runtime hot-path closure for this reduction.

        ``funcs`` are the compiled approximations of the reduced
        elementary functions (in :attr:`fn_names` order) and ``rnd`` the
        final rounding RN_T.  The generic version composes the
        special/reduce/compensate methods; subclasses override it with a
        fully inlined straight-line path (the Python analogue of the C
        functions RLIBM-32 emits) that is *bit-identical* to the generic
        composition — tests assert this exhaustively on small formats.
        """
        special = self.special
        reduce = self.reduce
        compensate = self.compensate
        if len(funcs) == 1:
            f0 = funcs[0]

            def evaluate(x: float) -> float:
                s = special(x)
                if s is not None:
                    return rnd(s)
                r, ctx = reduce(x)
                return rnd(compensate((f0(r),), ctx))
        else:
            f0, f1 = funcs

            def evaluate(x: float) -> float:
                s = special(x)
                if s is not None:
                    return rnd(s)
                r, ctx = reduce(x)
                return rnd(compensate((f0(r), f1(r)), ctx))

        return evaluate

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeReduction({self.name})"
