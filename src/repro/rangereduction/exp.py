"""Range reduction for the exponential family (exp, exp2, exp10).

Classic 2**(k/64) table reduction (Tang):

    x = k * C + r,   k = round(x / C),   C = log_b'(2)/64 for base b
    f(x) = 2**(k/64) * f(r) = 2**q * T[j] * f(r),  k = 64q + j, j in [0, 64)

For exp2, C = 1/64 and the subtraction ``x - k*C`` is *exact*; for exp and
exp10 the rounded constant C makes r a slightly perturbed reduced input —
harmless, because Algorithm 2 derives the reduced intervals from the very
same double computation.  Reduced inputs carry both signs, so Algorithm 3
generates separate piecewise polynomials for negative and positive r
(Table 3 lists exactly that for exp/exp2/exp10).

Special cases are target-derived: IEEE targets overflow to +inf and
underflow to 0 past thresholds found by bisection against the oracle;
posit targets instead *saturate* to maxpos/minpos — the very behaviour
that makes repurposed double libraries wrong for posits (Table 2).

Output compensation ``ldexp(T[j] * v, q)`` is monotonically increasing.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.batch.reduce import table
from repro.core.intervals import TargetFormat
from repro.fp.formats import FloatFormat
from repro.oracle.mpmath_oracle import Oracle, default_oracle
from repro.posit.format import PositFormat
from repro.rangereduction.base import RangeReduction, Reduced
from repro.rangereduction.tables import exp2_fraction_table
from repro.rangereduction.thresholds import (max_finite, ordinal_boundary,
                                             result_equals)

__all__ = ["ExpReduction"]


def _c_constants(base: str, oracle: Oracle) -> tuple[float, float]:
    """(1/C, C) with C = step of the reduction for this base."""
    if base == "exp2":
        return 64.0, 1.0 / 64.0
    if base == "exp":
        # C = ln(2)/64; both constants correctly rounded via the oracle
        ln2 = oracle.round_to_double("ln", 2.0)
        return 64.0 / ln2, ln2 / 64.0
    if base == "exp10":
        log10_2 = oracle.round_to_double("log10", 2.0)
        return 64.0 / log10_2, log10_2 / 64.0
    raise ValueError(f"base must be exp/exp2/exp10, got {base!r}")


class ExpReduction(RangeReduction):
    """exp/exp2/exp10 via the 64-entry 2**(j/64) table."""

    def __init__(self, base: str, target: TargetFormat,
                 max_degree: int = 7, oracle: Oracle = default_oracle):
        self.name = base
        self.target = target
        self.fn_names = (base,)
        self.exponents = (tuple(range(0, max_degree + 1)),)
        self._c_inv, self._c = _c_constants(base, oracle)
        self._tab = exp2_fraction_table(64)
        self._saturating = isinstance(target, PositFormat)

        if self._saturating:
            hi_bits = target.maxpos_bits
            lo_bits = target.minpos_bits
            self._hi_result = target.to_double(hi_bits)
            self._lo_result = target.to_double(lo_bits)
        else:
            assert isinstance(target, FloatFormat)
            hi_bits = target.inf_bits
            lo_bits = 0
            self._hi_result = math.inf
            self._lo_result = 0.0
        # smallest x whose result is already the saturated/overflowed top
        big = min(4096.0, max_finite(target))
        _, first_hi = ordinal_boundary(
            target, lambda x: not result_equals(self.name, target, hi_bits,
                                                oracle)(x),
            x_true=1.0, x_false=big)
        self._hi_thr = first_hi
        # largest (most negative allowed) x whose result is the bottom
        last_lo, _ = ordinal_boundary(
            target, result_equals(self.name, target, lo_bits, oracle),
            x_true=-big, x_false=-1.0)
        self._lo_thr = last_lo

    def special(self, x: float) -> float | None:
        if math.isnan(x):
            return math.nan
        if x >= self._hi_thr:
            return self._hi_result
        if x <= self._lo_thr:
            return self._lo_result
        if x == 0.0:
            return 1.0
        return None

    #: Keep preimages within this many interval widths of a midpoint.
    #: LP solutions are vertices — some constraint sits exactly on its
    #: interval edge — so between sampled constraints the polynomial can
    #: drift by ~1e-5..1e-4 widths; this catches the graze family that
    #: drift can misround while staying ~10k candidates per target.
    _GRAZE_THRESHOLD = 3e-5
    #: Hard ceiling on kept candidates (sorted hardest-first, so every
    #: genuinely grazing input survives the cap by a wide margin).
    _GRAZE_CAP = 24576

    def hard_input_candidates(self) -> list[float]:
        """Every representable input grazing a midpoint in the k=0 band.

        For |x| < C/2 the reduction is the identity (k = 0, r = x) and
        output compensation multiplies by T[0] = 1: the polynomial alone
        decides roundings in a band where up to ~2**18 inputs share each
        output ordinal near 1.0.  The graze family there is dense but
        *enumerable*: walk every output midpoint m between consecutive
        target values in [f(-C/2), f(C/2)] and invert it — the preimage
        is x* = log1p(m-1) / ln(b), computable in pure double arithmetic
        (m-1 is exact by Sterbenz, log1p carries ~2**-58 absolute error,
        far below the 2**-40-scale distances being classified).  Keep
        the representable neighbours of each x* whose image grazes m
        within :data:`_GRAZE_THRESHOLD` interval widths.

        IEEE targets only: posit targets carry ~28 fraction bits near
        1.0, so their band family is both deeper (multi-seed mining has
        never caught a posit near-1 miss — the extra precision tightens
        the LP) and large enough past the cap to over-constrain
        generation into infeasibility; the posit weak spot observed in
        practice is the saturation frontier instead (see ROADMAP).
        """
        fmt = self.target
        if self._saturating:
            return []
        # generation-time enumeration: candidates need ~2**-30 accuracy,
        # not correct rounding, so plain math.* is fine here
        ln_b = {"exp": 1.0, "exp2": math.log(2.0),  # fplint: disable=FP102
                "exp10": math.log(10.0)}[self.name]  # fplint: disable=FP102
        half_band = self._c / 2.0
        lo_bits = fmt.from_double(math.exp(-half_band * ln_b))  # fplint: disable=FP102
        hi_bits = fmt.from_double(math.exp(half_band * ln_b))  # fplint: disable=FP102
        scored: list[tuple[float, float]] = []
        seen: set[int] = set()
        bits = lo_bits
        y = fmt.to_double(bits)
        while bits != hi_bits:
            nbits = fmt.next_up(bits)
            ny = fmt.to_double(nbits)
            width = ny - y
            m = y + width / 2.0
            x_star = math.log1p(m - 1.0) / ln_b  # fplint: disable=FP102
            deriv = ln_b * m
            xb = fmt.from_double(x_star)
            up, down = fmt.next_up, fmt.next_down
            for cb, step in ((xb, up), (down(xb), down)):
                while True:
                    x = fmt.to_double(cb)
                    d = abs(x - x_star) * deriv / width
                    if d >= self._GRAZE_THRESHOLD:
                        break
                    if cb not in seen and self.special(x) is None:
                        seen.add(cb)
                        scored.append((d, x))
                    cb = step(cb)
            bits, y = nbits, ny
        scored.sort(key=lambda t: t[0])
        return [x for _, x in scored[: self._GRAZE_CAP]]

    def reduce(self, x: float) -> Reduced:
        k = round(x * self._c_inv)
        r = x - k * self._c
        q, j = divmod(k, 64)
        return Reduced(r + 0.0, (q, j))

    def compensate(self, values: Sequence[float], ctx: tuple) -> float:
        q, j = ctx
        return math.ldexp(self._tab[j] * values[0], q)

    def special_batch(self, xs: np.ndarray):
        hi = xs >= self._hi_thr
        lo = xs <= self._lo_thr
        mask = np.isnan(xs) | hi | lo | (xs == 0.0)
        sub = xs[mask]
        vals = np.where(sub >= self._hi_thr, self._hi_result,
                        np.where(sub <= self._lo_thr, self._lo_result, 1.0))
        vals[np.isnan(sub)] = np.nan
        return mask, vals

    def reduce_batch(self, xs: np.ndarray):
        k = xs * self._c_inv
        np.rint(k, out=k)                   # round() ties-to-even, exact
        r = k * self._c
        np.subtract(xs, r, out=r)           # r = x - k*C
        r += 0.0
        ki = k.astype(np.int64)
        return r, (ki >> 6, ki & 63)        # divmod(k, 64)

    def compensate_batch(self, values, ctx):
        q, j = ctx
        g = table(self, "_tab").take(j)
        g *= values[0]
        return np.ldexp(g, q, out=g)

    def make_fast_evaluate(self, funcs, rnd):
        """Inlined hot path (bit-identical to special/reduce/compensate)."""
        f0 = funcs[0]
        tab = self._tab
        c_inv = self._c_inv
        c = self._c
        lo_thr = self._lo_thr
        hi_thr = self._hi_thr
        special = self.special
        ldexp = math.ldexp

        def evaluate(x: float) -> float:
            if lo_thr < x < hi_thr and x != 0.0:   # NaN fails comparisons
                k = round(x * c_inv)
                r = x - k * c
                q, j = divmod(k, 64)
                return rnd(ldexp(tab[j] * f0(r + 0.0), q))
            return rnd(special(x))

        return evaluate
