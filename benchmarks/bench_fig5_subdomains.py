"""Figure 5: log2/log10 performance vs number of piecewise sub-domains.

The paper regenerates the two log functions with 2**0..2**12 sub-domains
and plots the speedup over the single polynomial, with circles marking
degree drops.  Reproduction target (shape): near-flat (or slightly
below 1x) while the degree stays put, stepping up as splits let the
degree fall, flattening once table lookup dominates; every variant stays
correctly rounded.  The sweep is capped at 2**6 here to keep the bench's
pure-Python regeneration affordable; pass a bigger cap to
``repro.eval.subdomains.subdomain_sweep`` for the full curve.

The registered ``fig5_subdomains`` benchmark (suite ``paper``) runs
both sweeps and records per-function degree drop and mismatch gauges.
"""

import pytest

from repro.eval.subdomains import render_sweep, subdomain_sweep
from repro.obs.bench import benchmark as bench_register, emit_report

MAX_BITS = 6
FUNCTIONS = ("log2", "log10")


def _sweep(fn_name: str):
    points = subdomain_sweep(fn_name, max_bits=MAX_BITS, n_inputs=4000,
                             seed=23)
    emit_report(f"fig5_{fn_name}.txt", render_sweep(fn_name, points))
    return points


@bench_register("fig5_subdomains", suite="paper")
def run_fig5_subdomains() -> dict[str, float]:
    """Sub-domain sweep for log2/log10 (Figure 5): degree drop, misses."""
    gauges: dict[str, float] = {}
    for fn_name in FUNCTIONS:
        points = _sweep(fn_name)
        # degree falls as sub-domains multiply (the mechanism behind the
        # paper's speedup curve); mismatches stay at isolated
        # sampled-residual misses
        assert all(p.mismatches <= 8 for p in points)
        assert min(p.max_degree for p in points) <= points[0].max_degree
        gauges[f"{fn_name}_degree_drop"] = float(
            points[0].max_degree - min(p.max_degree for p in points))
        gauges[f"{fn_name}_mismatches"] = float(
            sum(p.mismatches for p in points))
        gauges[f"{fn_name}_best_ns_per_call"] = float(
            min(p.ns_per_call for p in points))
    return gauges


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("fn_name", FUNCTIONS)
def test_fig5_subdomain_sweep(benchmark, report_dir, fn_name):
    points = benchmark.pedantic(lambda: _sweep(fn_name),
                                rounds=1, iterations=1)

    # every forced split stays correctly rounded up to isolated
    # sampled-residual misses (the bench regenerates from a reduced input
    # budget; the paper validates all inputs)
    assert all(p.mismatches <= 8 for p in points)
    # degree falls as sub-domains multiply; in CPython the saved
    # multiply-adds are cancelled by table-lookup overhead, so the
    # wall-clock gain of the paper's C substrate does not materialize —
    # see EXPERIMENTS.md
    assert min(p.max_degree for p in points) <= points[0].max_degree
