"""Figure 5: log2/log10 performance vs number of piecewise sub-domains.

The paper regenerates the two log functions with 2**0..2**12 sub-domains
and plots the speedup over the single polynomial, with circles marking
degree drops.  Reproduction target (shape): near-flat (or slightly
below 1x) while the degree stays put, stepping up as splits let the
degree fall, flattening once table lookup dominates; every variant stays
correctly rounded.  The sweep is capped at 2**6 here to keep the bench's
pure-Python regeneration affordable; pass a bigger cap to
``repro.eval.subdomains.subdomain_sweep`` for the full curve.
"""

import pytest

from conftest import emit
from repro.eval.subdomains import render_sweep, subdomain_sweep

MAX_BITS = 6


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("fn_name", ["log2", "log10"])
def test_fig5_subdomain_sweep(benchmark, report_dir, fn_name):
    points = benchmark.pedantic(
        lambda: subdomain_sweep(fn_name, max_bits=MAX_BITS, n_inputs=4000, seed=23),
        rounds=1, iterations=1)
    text = render_sweep(fn_name, points)
    emit(report_dir, f"fig5_{fn_name}.txt", text)

    # every forced split stays correctly rounded up to isolated
    # sampled-residual misses (the bench regenerates from a reduced input
    # budget; the paper validates all inputs)
    assert all(p.mismatches <= 8 for p in points)
    # degree falls as sub-domains multiply (the mechanism behind the
    # paper's speedup curve); in CPython the saved multiply-adds are
    # cancelled by table-lookup overhead, so the wall-clock gain of the
    # paper's C substrate does not materialize — see EXPERIMENTS.md
    assert min(p.max_degree for p in points) <= points[0].max_degree
