"""Scalar evaluation latency of the shipped float32 exp (quick suite).

A sub-second micro-benchmark using the hardened timing discipline of
:mod:`repro.obs.timing` (perf_counter_ns, warmup, GC pinned, MAD
outlier rejection) on the hottest scalar path: ``evaluate`` and
``evaluate_bits`` of the shipped float32 ``exp`` over a fixed 512-input
sample.  Because it is cheap it runs in every ``quick`` trajectory
record, giving the per-call latency a dense history even when the
heavyweight paper suites only run before releases.
"""

from __future__ import annotations

import pytest

from repro.eval.timing import timing_inputs
from repro.api import load as _load
from repro.fp.formats import FLOAT32
from repro.obs import metrics
from repro.obs.bench import benchmark, emit_report

N_INPUTS = 512
REPEATS = 7


@benchmark("scalar_eval", suite="quick")
def run_scalar_eval() -> dict[str, float]:
    """ns/call of float32 exp scalar evaluate/evaluate_bits (512 inputs)."""
    from repro.obs.timing import measure

    g = _load("exp", "float32").fn
    xs = timing_inputs("exp", FLOAT32, N_INPUTS)

    def eval_loop():
        ev = g.evaluate
        for x in xs:
            ev(x)

    def bits_loop():
        eb = g.evaluate_bits
        for x in xs:
            eb(x)

    t_eval = measure(eval_loop, repeats=REPEATS, per=len(xs))
    t_bits = measure(bits_loop, repeats=REPEATS, per=len(xs))

    metrics.gauge("scalar.bench.eval_ns").set(t_eval.median)
    metrics.gauge("scalar.bench.eval_bits_ns").set(t_bits.median)

    lines = [
        f"Scalar evaluation latency (float32 exp, {len(xs)} inputs, "
        f"median of {REPEATS} repeats)",
        f"{'path':>16s} {'ns/call':>9s} {'mad':>7s} {'kept':>5s}",
        "-" * 40,
        f"{'evaluate':>16s} {t_eval.median:9.0f} {t_eval.mad:7.0f} "
        f"{t_eval.n:5d}",
        f"{'evaluate_bits':>16s} {t_bits.median:9.0f} {t_bits.mad:7.0f} "
        f"{t_bits.n:5d}",
    ]
    emit_report("scalar_eval.txt", "\n".join(lines) + "\n")

    # the MAD gauge is named so metric_direction() skips it: spread is
    # diagnostic context, not a regression signal
    return {"eval_ns": t_eval.median, "eval_bits_ns": t_bits.median,
            "eval_mad": t_eval.mad}


@pytest.mark.benchmark(group="scalar")
def test_scalar_eval_latency(benchmark, report_dir):
    gauges = benchmark.pedantic(run_scalar_eval, rounds=1, iterations=1)
    assert gauges["eval_ns"] > 0
