"""Figure 3: speedup of RLIBM-32's float32 functions over each library.

Panels a-d of the paper show RLIBM-32 vs glibc float/double, Intel
float/double, CR-LIBM and Metalibm float/double, with per-function bars
and a geomean.  Reproduction target (shape): RLIBM-32 beats the double
mini-max models and CR-LIBM clearly (CR-LIBM worst, ~2x class), beats or
ties the float models (the paper concedes glibc float wins on the log
family), with everything in the 1x-3x band.

The registered ``fig3_float_speedup`` benchmark (suite ``paper``)
records the per-baseline geomean speedups as trajectory gauges; the
per-function pytest-benchmark entries additionally give the raw ns/call
of the shipped RLIBM-32 functions.
"""

import pytest

from repro.baselines import timing_baselines
from repro.eval.timing import (geomean, render_speedups, speedup_rows,
                               timing_inputs)
from repro.fp.formats import FLOAT32
from repro.api import functions, load as _load
from repro.obs.bench import benchmark as bench_register, emit_report

FLOAT32_FUNCTIONS = functions("float32")


def load(name: str, target: str = "float32"):
    """The raw GeneratedFunction via the facade (timing wants no wrapper)."""
    return _load(name, target).fn


@bench_register("fig3_float_speedup", suite="paper")
def run_fig3_speedups() -> dict[str, float]:
    """Per-baseline geomean speedup of RLIBM-32 float32 (Figure 3)."""
    libs = timing_baselines()
    rows = speedup_rows(FLOAT32_FUNCTIONS, FLOAT32,
                        lambda n: load(n, "float32"), libs,
                        n_inputs=384, repeats=3)
    text = render_speedups(rows, "Figure 3: RLIBM-32 float32 speedups")
    emit_report("fig3.txt", text)

    gauges: dict[str, float] = {}
    for lib_name in libs:
        sp = [r.speedup(lib_name) for r in rows
              if r.speedup(lib_name) is not None]
        if sp:
            key = lib_name.replace(" ", "_").replace("-", "_")
            gauges[f"geomean_speedup_{key}"] = geomean(sp)

    # shape assertions: CR-LIBM (Ziv evaluate+verify) must be the slowest
    # baseline on every function it provides
    for row in rows:
        cr = row.speedup("crlibm")
        if cr is None:
            continue
        others = [row.speedup(n) for n in row.baseline_ns
                  if n != "crlibm" and row.speedup(n) is not None]
        assert cr > max(others), (row.function, cr, others)
    # and RLIBM-32 must beat the double mini-max models on average
    assert gauges["geomean_speedup_intel_double"] > 1.0
    return gauges


@pytest.mark.benchmark(group="fig3-rlibm-ns")
@pytest.mark.parametrize("fn_name", FLOAT32_FUNCTIONS)
def test_rlibm_float32_ns(benchmark, fn_name):
    g = load(fn_name, "float32")
    xs = timing_inputs(fn_name, FLOAT32, 256)

    def run():
        for x in xs:
            g.evaluate(x)

    benchmark(run)


@pytest.mark.benchmark(group="fig3-speedups")
def test_fig3_speedup_table(benchmark, report_dir):
    benchmark.pedantic(run_fig3_speedups, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig3-vectorization")
def test_vectorization_note(benchmark, report_dir):
    """Section 4.3: vectorized (array-at-a-time numpy) mini-max vs scalar
    RLIBM-32; the paper finds vectorized Intel ~10% faster than RLIBM-32."""
    import numpy as np

    from repro.baselines import MinimaxLibm
    from repro.baselines.minimax_libm import reduced_minimax
    from repro.rangereduction.tables import exp2_fraction_table
    import math

    g = load("exp", "float32")
    xs = timing_inputs("exp", FLOAT32, 1024)
    tab = np.array(exp2_fraction_table(64))
    poly = reduced_minimax("exp", 8)
    c = math.log(2) / 64.0
    c_inv = 64.0 / math.log(2)

    def vectorized(batch):
        arr = np.asarray(batch)
        k = np.rint(arr * c_inv)
        r = arr - k * c
        q, j = np.divmod(k.astype(np.int64), 64)
        return np.ldexp(tab[j] * poly.eval_many(r), q)

    benchmark.pedantic(lambda: [g.evaluate(x) for x in xs],
                       rounds=3, iterations=1)
    from repro.eval.timing import time_batch as tb, time_scalar as ts
    s_ns = ts(g.evaluate, xs, repeats=3).median
    v_ns = tb(vectorized, xs, repeats=3).median
    text = ("Vectorization note (section 4.3):\n"
            f"  scalar RLIBM-32 exp: {s_ns:8.0f} ns/input\n"
            f"  vectorized mini-max exp (numpy batch): {v_ns:8.0f} ns/input\n"
            f"  vectorized/scalar: {v_ns / s_ns:.3f} "
            "(paper: vectorized Intel ~10% faster than RLIBM-32)\n")
    emit_report("fig3_vectorization.txt", text)
    # the vectorized mini-max must beat scalar evaluation (as in the paper)
    assert v_ns < s_ns
