"""Cold-start cost of the shipped tables: legacy vs compact vs arena.

The compact frozen-table layout (:mod:`repro.libm.compact`) exists for
exactly one reason beyond disk size: loading.  A legacy data module is
an 11k-line literal dict the interpreter must parse, build and GC-track
float by float; a compact module is ~100 lines of base85 text decoded
with one ``np.frombuffer``; an attached shared-memory arena skips the
module system entirely.  This benchmark measures all three the only
honest way — **fresh subprocesses with bytecode caching disabled**, so
neither ``sys.modules`` nor ``__pycache__`` can flatter a contender:

* *legacy*  — every shipped module re-rendered through
  :func:`repro.libm.serialize.render_module_legacy` into a tmpdir,
  then parsed + ``function_from_dict`` per pair (the pre-compact boot);
* *compact* — the shipped sources copied into a sibling tmpdir (same
  pyc-free footing), then parsed + ``function_from_compact`` per pair;
* *attach*  — map the published arena and build every batch kernel.

Wall time and RSS delta for each, past the common interpreter+numpy
baseline.  The registry floor asserts the acceptance criterion: the
compact cold boot of all 18 shipped pairs must be at least **3x**
faster than the legacy one (measured ~10-15x; the floor leaves room
for noisy CI hosts).  On-disk size of both renderings is reported too.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

import pytest

from repro.obs import metrics
from repro.obs.bench import benchmark, emit_report

IMPORT_SPEEDUP_FLOOR = 3.0

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_RSS_HELPER = """\
def _rss_mb():
    with open("/proc/self/status") as fh:
        line = next(l for l in fh if l.startswith("VmRSS"))
    return int(line.split()[1]) / 1024.0
"""

#: loads every ``*.py`` data module under $BENCH_TREE (sorted, package
#: machinery bypassed: one spec per file) and rebuilds each function
#: exactly the way :func:`repro.libm.runtime.load_function` would —
#: compact modules through the pool decode, legacy ones through the
#: literal dict.  numpy/repro are imported before t0: the delta is the
#: table cost alone.
_LOAD_SNIPPET = _RSS_HELPER + """\
import glob, importlib.util, json, os, time
import numpy as np  # noqa: F401  — baseline, not measured
from repro.libm.compact import function_from_compact
from repro.libm.serialize import function_from_dict
paths = sorted(glob.glob(os.path.join(os.environ["BENCH_TREE"],
                                      "data_*", "*.py")))
assert len(paths) == 18, paths
r0, t0 = _rss_mb(), time.perf_counter()
fns = []
for i, path in enumerate(paths):
    spec = importlib.util.spec_from_file_location(f"_bench_mod{i}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    comp = getattr(mod, "COMPACT", None)
    fns.append(function_from_compact(comp) if comp is not None
               else function_from_dict(mod.DATA))
print(json.dumps({"time_s": time.perf_counter() - t0,
                  "rss_mb": _rss_mb() - r0, "n": len(fns)}))
"""

_ATTACH_SNIPPET = _RSS_HELPER + """\
import json, os, time
import numpy as np  # noqa: F401  — baseline, not measured
from repro.serve import tables
r0, t0 = _rss_mb(), time.perf_counter()
arena = tables.attach(os.environ["BENCH_ARENA"],
                      expect_hash=os.environ["BENCH_HASH"], untrack=True)
for key in arena.keys():
    arena.batch_function(key)
print(json.dumps({"time_s": time.perf_counter() - t0,
                  "rss_mb": _rss_mb() - r0, "n": len(arena.keys())}))
arena.close()
"""


def _subprocess_cost(snippet: str, extra_env: dict[str, str]) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    env["PYTHONDONTWRITEBYTECODE"] = "1"
    env.update(extra_env)
    out = subprocess.run([sys.executable, "-B", "-c", snippet], env=env,
                         capture_output=True, text=True, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def _tree_kb(root: str) -> float:
    total = 0
    for dirpath, _dirs, files in os.walk(root):
        total += sum(os.path.getsize(os.path.join(dirpath, f))
                     for f in files if f.endswith(".py"))
    return total / 1024.0


def _build_trees(tmp: str) -> tuple[str, str]:
    """(legacy_tree, compact_tree): 18 data modules each, no pyc."""
    import repro.libm.data_float32 as pkg_f32
    import repro.libm.data_posit32 as pkg_p32
    from repro.libm.serialize import render_module_legacy

    legacy = os.path.join(tmp, "legacy")
    compact = os.path.join(tmp, "compact")
    for pkg in (pkg_f32, pkg_p32):
        pkg_dir = os.path.dirname(pkg.__file__)
        pkg_name = os.path.basename(pkg_dir)
        os.makedirs(os.path.join(legacy, pkg_name))
        os.makedirs(os.path.join(compact, pkg_name))
        for fname in sorted(os.listdir(pkg_dir)):
            if not fname.endswith(".py") or fname == "__init__.py":
                continue
            src = os.path.join(pkg_dir, fname)
            shutil.copy(src, os.path.join(compact, pkg_name, fname))
            mod_name = f"repro.libm.{pkg_name}.{fname[:-3]}"
            import importlib
            mod = importlib.import_module(mod_name)
            with open(os.path.join(legacy, pkg_name, fname), "w") as fh:
                fh.write(render_module_legacy(mod.DATA))
    return legacy, compact


@benchmark("import_time", suite="quick",
           floors={"import_speedup": IMPORT_SPEEDUP_FLOOR})
def run_import_time() -> dict[str, float]:
    """Cold boot of all 18 pairs: compact must beat legacy >= 3x."""
    from repro import api
    from repro.serve import tables

    pairs = [(f, t) for t in ("float32", "posit32")
             for f in api.available(t)]
    with tempfile.TemporaryDirectory(prefix="bench_import_") as tmp:
        legacy_tree, compact_tree = _build_trees(tmp)
        legacy_kb = _tree_kb(legacy_tree)
        compact_kb = _tree_kb(compact_tree)
        # best-of-3 per contender, interleaved so page-cache and CPU
        # frequency drift hit all three alike
        legacy_s = compact_s = attach_s = float("inf")
        legacy_cost = compact_cost = attach_cost = None
        with tables.publish(pairs) as arena:
            arena_env = {"BENCH_ARENA": arena.name,
                         "BENCH_HASH": arena.content_hash}
            for _ in range(3):
                c = _subprocess_cost(_LOAD_SNIPPET,
                                     {"BENCH_TREE": legacy_tree})
                if c["time_s"] < legacy_s:
                    legacy_s, legacy_cost = c["time_s"], c
                c = _subprocess_cost(_LOAD_SNIPPET,
                                     {"BENCH_TREE": compact_tree})
                if c["time_s"] < compact_s:
                    compact_s, compact_cost = c["time_s"], c
                c = _subprocess_cost(_ATTACH_SNIPPET, arena_env)
                if c["time_s"] < attach_s:
                    attach_s, attach_cost = c["time_s"], c

    gauges = {
        "legacy_s": legacy_s,
        "legacy_rss_mb": legacy_cost["rss_mb"],
        "compact_s": compact_s,
        "compact_rss_mb": compact_cost["rss_mb"],
        "attach_s": attach_s,
        "attach_rss_mb": attach_cost["rss_mb"],
        "import_speedup": legacy_s / compact_s,
        "attach_speedup": legacy_s / attach_s,
        "legacy_kb": legacy_kb,
        "compact_kb": compact_kb,
        "size_ratio": legacy_kb / compact_kb,
    }
    for name, value in gauges.items():
        metrics.gauge(f"import.bench.{name}").set(float(value))

    lines = [
        "Cold-start cost, all 18 shipped pairs (fresh subprocess, "
        "no pyc, best of 3):",
        f"  legacy literal modules : {legacy_s:7.3f} s  "
        f"+{legacy_cost['rss_mb']:6.1f} MB RSS   {legacy_kb:8.1f} KB disk",
        f"  compact modules        : {compact_s:7.3f} s  "
        f"+{compact_cost['rss_mb']:6.1f} MB RSS   {compact_kb:8.1f} KB disk",
        f"  arena attach           : {attach_s:7.3f} s  "
        f"+{attach_cost['rss_mb']:6.1f} MB RSS",
        "",
        f"  compact import speedup : {gauges['import_speedup']:6.2f}x "
        f"(floor: {IMPORT_SPEEDUP_FLOOR:.0f}x)",
        f"  arena attach speedup   : {gauges['attach_speedup']:6.2f}x",
        f"  on-disk size ratio     : {gauges['size_ratio']:6.2f}x",
    ]
    text = "\n".join(lines)
    print(text)
    emit_report("import_time.txt", text + "\n")
    return gauges


@pytest.mark.bench
@pytest.mark.benchmark(group="import")
def test_import_time(benchmark, report_dir):
    gauges = benchmark.pedantic(run_import_time, rounds=1, iterations=1)
    assert gauges["import_speedup"] >= IMPORT_SPEEDUP_FLOOR, (
        f"compact cold boot only {gauges['import_speedup']:.2f}x faster "
        f"than legacy; acceptance floor is {IMPORT_SPEEDUP_FLOOR:.0f}x")


if __name__ == "__main__":
    run_import_time()
