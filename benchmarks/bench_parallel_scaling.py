"""Parallel scaling: serial vs N-worker oracle validation.

Times :func:`repro.core.validate.validate` over a large float32 input
pool (default 100k inputs, ``REPRO_BENCH_POOL`` overrides) for the
shipped ``exp`` at 1, 2, and 4 workers, asserts the parallel mismatch
lists are bit-identical to serial, and records the speedups both in the
text report and as gauges in the metrics sidecar
(``parallel_scaling.metrics.json``), so scaling regressions diff like
any other benchmark.

The ≥1.5x-at-4-workers expectation only holds where 4 CPUs exist;
on smaller machines the numbers are still recorded (process-pool
overhead included) but not asserted.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from conftest import emit
from repro.core.sampling import sample_values
from repro.core.validate import validate
from repro.fp.formats import FLOAT32
from repro.libm.runtime import load_function as load
from repro.obs import metrics
from repro.oracle import default_oracle

POOL_SIZE = int(os.environ.get("REPRO_BENCH_POOL", "100000"))
WORKER_COUNTS = (2, 4)
SEED = 2021


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


@pytest.mark.parallel
@pytest.mark.benchmark(group="parallel")
def test_parallel_validate_scaling(benchmark, report_dir):
    fn = load("exp", "float32")
    # representable-value-proportional pool over the non-special domain
    pool = sample_values(FLOAT32, POOL_SIZE, random.Random(SEED),
                         -80.0, 80.0)
    assert len(pool) >= 0.9 * POOL_SIZE

    times: dict[int, float] = {}
    results: dict[int, list] = {}
    infos: dict[int, dict] = {}

    def run():
        for workers in (1,) + WORKER_COUNTS:
            # every configuration pays the full Ziv-loop oracle cost;
            # otherwise the first pass warms the memo and later passes
            # (and forked workers, which inherit it) time as dict lookups
            default_oracle.clear_cache()
            t0 = time.perf_counter()
            results[workers] = validate(fn, pool, workers=workers)
            times[workers] = time.perf_counter() - t0
            # parallel passes do their oracle work in forked workers, so
            # only the serial snapshot carries meaningful call counters
            infos[workers] = default_oracle.cache_info()

    benchmark.pedantic(run, rounds=1, iterations=1)

    serial_s = times[1]
    lines = [
        "Parallel validate scaling (float32 exp, "
        f"{len(pool)} inputs, {_cpus()} CPUs available)",
        f"{'workers':>8s} {'time_s':>9s} {'speedup':>8s}",
        "-" * 28,
    ]
    metrics.gauge("parallel.bench.pool_size").set(float(len(pool)))
    info = infos[1]
    calls = max(1, info["calls"])
    metrics.gauge("parallel.bench.oracle_hit_rate").set(
        (info["mem_hits"] + info["store_hits"]) / calls)
    metrics.gauge("parallel.bench.oracle_fast_certified").set(
        float(info["fast_certified"]))
    speedups = {}
    for workers, t in sorted(times.items()):
        assert results[workers] == results[1], (
            f"workers={workers} diverged from serial")
        speedups[workers] = serial_s / t if t else float("inf")
        lines.append(f"{workers:8d} {t:9.2f} {speedups[workers]:8.2f}")
        metrics.gauge(f"parallel.bench.workers_{workers}_s").set(t)
        metrics.gauge(f"parallel.bench.speedup_{workers}").set(
            speedups[workers])

    emit(report_dir, "parallel_scaling.txt", "\n".join(lines) + "\n")

    if _cpus() >= 4:
        assert speedups[4] >= 1.5, (
            f"4-worker speedup {speedups[4]:.2f}x below the 1.5x floor "
            f"on a {_cpus()}-CPU machine")
