"""Parallel scaling: serial vs N-worker oracle validation.

Times :func:`repro.core.validate.validate` over a large float32 input
pool (default 100k inputs, ``REPRO_BENCH_POOL`` overrides) for the
shipped ``exp`` at 1, 2, and 4 workers, asserts the parallel mismatch
lists are bit-identical to serial, and records the speedups both in the
text report and as gauges — in the ``parallel_scaling.metrics.json``
sidecar and the ``BENCH_<host>.json`` trajectory (suite ``scaling``) —
so scaling regressions diff like any other benchmark.

The speedup gauges are recorded **unconditionally**, on every machine:
the known sub-1x regression on small hosts (see ROADMAP.md) has to be
on the record to be tracked.  Only the ≥1.5x-at-4-workers *floor* is
CPU-gated (the registry entry's ``gate``, and the pytest wrapper's
assert): on a <4-CPU machine the numbers are still appended to the
trajectory (process-pool overhead included) but not enforced.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.api import load as _load
from repro.core.sampling import sample_values
from repro.core.validate import validate
from repro.fp.formats import FLOAT32
from repro.obs import metrics
from repro.obs.bench import benchmark, emit_report
from repro.oracle import default_oracle
from repro.parallel.executor import clear_shared_pools

POOL_SIZE = int(os.environ.get("REPRO_BENCH_POOL", "100000"))
WORKER_COUNTS = (2, 4)
SEED = 2021
SPEEDUP_4_FLOOR = 1.5


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


@benchmark("parallel_scaling", suite="scaling",
           floors={"speedup_4": SPEEDUP_4_FLOOR},
           gate=lambda: _cpus() >= 4)
def run_parallel_scaling() -> dict[str, float]:
    """validate() wall time and speedup at 1/2/4 workers (float32 exp)."""
    fn = _load("exp", "float32").fn
    # representable-value-proportional pool over the non-special domain
    pool = sample_values(FLOAT32, POOL_SIZE, random.Random(SEED),
                         -80.0, 80.0)
    assert len(pool) >= 0.9 * POOL_SIZE

    times: dict[int, float] = {}
    results: dict[int, list] = {}
    infos: dict[int, dict] = {}
    clear_shared_pools()          # measure fork cost once, from cold
    reuse_before = metrics.counter("workers.pool_reuse").value
    for workers in (1,) + WORKER_COUNTS:
        # every configuration pays the full Ziv-loop oracle cost;
        # otherwise the first pass warms the memo and later passes
        # (and forked workers, which inherit it) time as dict lookups
        default_oracle.clear_cache()
        t0 = time.perf_counter()
        # reuse_pool: the per-worker-count pool is memoized, so this
        # benchmark and the serving benchmark share forks and both feed
        # the workers.pool_reuse counter instead of double-forking
        results[workers] = validate(fn, pool, workers=workers,
                                    reuse_pool=True)
        times[workers] = time.perf_counter() - t0
        # parallel passes do their oracle work in forked workers, so
        # only the serial snapshot carries meaningful call counters
        infos[workers] = default_oracle.cache_info()

    serial_s = times[1]
    lines = [
        "Parallel validate scaling (float32 exp, "
        f"{len(pool)} inputs, {_cpus()} CPUs available)",
        f"{'workers':>8s} {'time_s':>9s} {'speedup':>8s}",
        "-" * 28,
    ]
    gauges: dict[str, float] = {"pool_size": float(len(pool)),
                                "cpus": float(_cpus())}
    metrics.gauge("parallel.bench.pool_size").set(float(len(pool)))
    info = infos[1]
    calls = max(1, info["calls"])
    hit_rate = (info["mem_hits"] + info["store_hits"]) / calls
    gauges["oracle_hit_rate"] = hit_rate
    metrics.gauge("parallel.bench.oracle_hit_rate").set(hit_rate)
    metrics.gauge("parallel.bench.oracle_fast_certified").set(
        float(info["fast_certified"]))
    for workers, t in sorted(times.items()):
        assert results[workers] == results[1], (
            f"workers={workers} diverged from serial")
        speedup = serial_s / t if t else float("inf")
        lines.append(f"{workers:8d} {t:9.2f} {speedup:8.2f}")
        metrics.gauge(f"parallel.bench.workers_{workers}_s").set(t)
        gauges[f"workers_{workers}_s"] = t
        if workers != 1:
            metrics.gauge(f"parallel.bench.speedup_{workers}").set(speedup)
            gauges[f"speedup_{workers}"] = speedup

    # warm-pool pass: the 2-worker pool is already forked, so this
    # validates against memoized workers — proof the bench never
    # double-forks, visible as a workers.pool_reuse increment
    head = set(pool[:2000])
    warm = validate(fn, pool[:2000], workers=2, reuse_pool=True)
    assert warm == [m for m in results[1] if m.x in head], \
        "warm-pool validate diverged from serial"
    reuse = metrics.counter("workers.pool_reuse").value - reuse_before
    assert reuse >= 1, "warm-pool pass did not reuse the memoized pool"
    gauges["pool_reuse"] = float(reuse)
    metrics.gauge("parallel.bench.pool_reuse").set(float(reuse))
    lines.append(f"pool reuse hits: {reuse}")
    clear_shared_pools()

    emit_report("parallel_scaling.txt", "\n".join(lines) + "\n")
    return gauges


@pytest.mark.parallel
@pytest.mark.benchmark(group="parallel")
def test_parallel_validate_scaling(benchmark, report_dir):
    gauges = benchmark.pedantic(run_parallel_scaling, rounds=1, iterations=1)

    if _cpus() >= 4:
        assert gauges["speedup_4"] >= SPEEDUP_4_FLOOR, (
            f"4-worker speedup {gauges['speedup_4']:.2f}x below the "
            f"{SPEEDUP_4_FLOOR}x floor on a {_cpus()}-CPU machine")
