"""Table 3: polynomial generation statistics.

Rendered from the statistics frozen alongside the shipped coefficient
tables (time, reduced-input counts, piecewise sizes, degrees, terms),
plus a live end-to-end regeneration of one function at reduced sample
size so the bench actually exercises — and times — the generator.

Reproduction target (shape): single-digit polynomial degrees, small
piecewise tables, a *single* polynomial pair sufficing for sinpi/cospi,
oracle time dominating generation time (the paper reports 86% for
floats), minutes-scale generation.
"""

import random

import pytest

from conftest import emit
from repro.core import FunctionSpec, generate
from repro.core.piecewise import PiecewiseConfig
from repro.core.sampling import sample_values
from repro.eval.tables import render_table3, table3_rows
from repro.fp.formats import FLOAT32
from repro.rangereduction.domains import sampling_domain
from repro.rangereduction import reduction_for


@pytest.mark.benchmark(group="table3")
def test_table3_generation_stats(benchmark, report_dir):
    def regenerate_log2_small():
        rr = reduction_for("log2", FLOAT32)
        lo, hi = sampling_domain("log2", FLOAT32, rr)
        inputs = sample_values(FLOAT32, 4000, random.Random(3), lo, hi)
        spec = FunctionSpec("log2", FLOAT32, rr,
                            PiecewiseConfig(max_index_bits=8))
        return generate(spec, inputs)

    g = benchmark.pedantic(regenerate_log2_small, rounds=1, iterations=1)
    assert g.stats.reduced_count > 0

    parts = [render_table3(table3_rows("float32"),
                           "Table 3 (float32 functions)")]
    posit_rows = table3_rows("posit32")
    if posit_rows:
        parts.append(render_table3(posit_rows, "Table 3 (posit32 functions)"))
    text = "\n".join(parts)
    emit(report_dir, "table3.txt", text)

    rows = table3_rows("float32")
    assert len(rows) == 10
    # paper shape: degrees stay single-digit; sinpi/cospi need one
    # polynomial per reduced function
    assert all(max(r.degree.values()) <= 8 for r in rows)
    sinpi = next(r for r in rows if r.function == "sinpi")
    assert all(v == 1 for v in sinpi.npolys.values())
    # the oracle is a visible share of generation time (the paper reports
    # 86%; our accounting only covers the rounding-interval phase — the
    # oracle calls inside Algorithm 2 and validation are not included —
    # and the shared cache amortizes repeats, so the floor is lower)
    assert sum(r.oracle_share for r in rows) / len(rows) > 0.05
