"""Table 3: polynomial generation statistics.

Rendered from the statistics frozen alongside the shipped coefficient
tables (time, reduced-input counts, piecewise sizes, degrees, terms),
plus a live end-to-end regeneration of one function at reduced sample
size so the bench actually exercises — and times — the generator.

Reproduction target (shape): single-digit polynomial degrees, small
piecewise tables, a *single* polynomial pair sufficing for sinpi/cospi,
oracle time dominating generation time (the paper reports 86% for
floats), minutes-scale generation.

Two registered benchmarks (suite ``gen``): ``table3_generation`` (the
live log2 regeneration + frozen-stats shape checks) and
``generation_cache`` (baseline/cold/warm persistent-cache speedups with
bit-identical tables, floors cold >= 1.5x, warm >= 5x).
"""

import random
import time

import pytest

from repro.core import FunctionSpec, generate
from repro.core.piecewise import PiecewiseConfig
from repro.core.sampling import sample_values
from repro.eval.tables import render_table3, table3_rows
from repro.fp.formats import FLOAT32
from repro.obs import metrics
from repro.obs.bench import benchmark as bench_register, emit_report
from repro.rangereduction.domains import sampling_domain
from repro.rangereduction import reduction_for

COLD_SPEEDUP_FLOOR = 1.5
WARM_SPEEDUP_FLOOR = 5.0


def _log2_workload():
    """The bench's generation workload: log2/float32 at reduced sample."""
    rr = reduction_for("log2", FLOAT32)
    lo, hi = sampling_domain("log2", FLOAT32, rr)
    inputs = sample_values(FLOAT32, 4000, random.Random(3), lo, hi)
    spec = FunctionSpec("log2", FLOAT32, rr,
                        PiecewiseConfig(max_index_bits=8))
    return spec, inputs


@bench_register("table3_generation", suite="gen")
def run_table3() -> dict[str, float]:
    """Live log2 regeneration + frozen Table-3 statistics shape checks."""
    spec, inputs = _log2_workload()
    t0 = time.perf_counter()
    g = generate(spec, inputs)
    regen_s = time.perf_counter() - t0
    assert g.stats.reduced_count > 0

    parts = [render_table3(table3_rows("float32"),
                           "Table 3 (float32 functions)")]
    posit_rows = table3_rows("posit32")
    if posit_rows:
        parts.append(render_table3(posit_rows, "Table 3 (posit32 functions)"))
    emit_report("table3.txt", "\n".join(parts))

    rows = table3_rows("float32")
    assert len(rows) == 10
    # paper shape: degrees stay single-digit; sinpi/cospi need one
    # polynomial per reduced function
    assert all(max(r.degree.values()) <= 8 for r in rows)
    sinpi = next(r for r in rows if r.function == "sinpi")
    assert all(v == 1 for v in sinpi.npolys.values())
    # the oracle is a visible share of generation time (the paper reports
    # 86%; our accounting only covers the rounding-interval phase — the
    # oracle calls inside Algorithm 2 and validation are not included —
    # and the shared cache amortizes repeats, so the floor is lower)
    oracle_share = sum(r.oracle_share for r in rows) / len(rows)
    assert oracle_share > 0.05
    return {"regen_log2_s": regen_s,
            "oracle_share": oracle_share,
            "max_degree": float(max(max(r.degree.values()) for r in rows))}


@bench_register("generation_cache", suite="gen",
                floors={"cold_speedup": COLD_SPEEDUP_FLOOR,
                        "warm_speedup": WARM_SPEEDUP_FLOOR})
def run_generation_cache() -> dict[str, float]:
    """Cold/warm persistent-cache speedups, with bit-identical tables.

    Three in-process passes over the same workload:

    * **baseline** — every fast path off: pure-Fraction oracle
      certification, Fraction interval endpoints and format conversions,
      per-probe corner walk, no LP memo, no store (the pre-optimization
      pipeline);
    * **cold** — fast paths on, empty persistent store (first run of a
      fresh checkout);
    * **warm** — fast paths on, the store the cold pass just filled
      (every later run).

    The three generated functions must serialize byte-identically —
    the caches and fast paths are proven value-preserving — and the
    floors are cold >= 1.5x, warm >= 5x over baseline.
    """
    import tempfile

    import repro.core.reduced as reduced_mod
    import repro.fp.formats as formats
    import repro.fp.rounding as rounding
    from repro.cache import SegmentStore
    from repro.libm.serialize import function_to_dict
    from repro.lp.solver import clear_solution_cache, use_solution_cache
    from repro.oracle.mpmath_oracle import Oracle

    times: dict[str, float] = {}
    tables: dict[str, dict] = {}
    oracles: dict[str, Oracle] = {}

    def one_pass(name, oracle, *, fast):
        clear_solution_cache()
        use_solution_cache(fast)
        rounding.FAST_INTERVALS = fast
        formats.FAST_CONVERT = fast
        reduced_mod.FAST_WALK = fast
        spec, inputs = _log2_workload()
        t0 = time.perf_counter()
        fn = generate(spec, inputs, oracle)
        times[name] = time.perf_counter() - t0
        # function_to_dict embeds wall-clock GenStats; those can never
        # match across passes, so compare everything but the timings
        d = function_to_dict(fn)
        for key in ("gen_time_s", "oracle_time_s", "phase_s",
                    "total_time_s"):
            d["stats"].pop(key, None)
        tables[name] = d
        oracles[name] = oracle

    with tempfile.TemporaryDirectory() as tmp:
        root = f"{tmp}/genstore"
        try:
            one_pass("baseline",
                     Oracle(fast_certify=False, adaptive_prec=False),
                     fast=False)
            store = SegmentStore(root)
            one_pass("cold", Oracle(store=store), fast=True)
            store.flush()
            # a fresh store object on the same root = a later process
            one_pass("warm", Oracle(store=SegmentStore(root)), fast=True)
        finally:
            rounding.FAST_INTERVALS = True
            formats.FAST_CONVERT = True
            reduced_mod.FAST_WALK = True
            use_solution_cache(True)

    assert tables["cold"] == tables["baseline"], (
        "fast-path generation diverged from the exact baseline")
    assert tables["warm"] == tables["baseline"], (
        "warm-cache generation diverged from the exact baseline")

    cold_speedup = times["baseline"] / times["cold"]
    warm_speedup = times["baseline"] / times["warm"]
    info = oracles["warm"].cache_info()
    calls = max(1, info["calls"])
    hit_rate = (info["mem_hits"] + info["store_hits"]) / calls

    metrics.gauge("cache.bench.baseline_s").set(times["baseline"])
    metrics.gauge("cache.bench.cold_s").set(times["cold"])
    metrics.gauge("cache.bench.warm_s").set(times["warm"])
    metrics.gauge("cache.bench.cold_speedup").set(cold_speedup)
    metrics.gauge("cache.bench.warm_speedup").set(warm_speedup)
    metrics.gauge("cache.bench.warm_oracle_hit_rate").set(hit_rate)

    lines = [
        "Generation cache speedup (log2/float32, 4000 sampled inputs)",
        f"{'pass':>10s} {'time_s':>9s} {'speedup':>8s}",
        "-" * 30,
        f"{'baseline':>10s} {times['baseline']:9.2f} {1.0:8.2f}",
        f"{'cold':>10s} {times['cold']:9.2f} {cold_speedup:8.2f}",
        f"{'warm':>10s} {times['warm']:9.2f} {warm_speedup:8.2f}",
        f"warm-pass oracle hit rate: {hit_rate:.3f}",
        "tables bit-identical across all passes: yes",
    ]
    emit_report("generation_cache.txt", "\n".join(lines) + "\n")

    assert hit_rate > 0.9
    return {"baseline_s": times["baseline"], "cold_s": times["cold"],
            "warm_s": times["warm"], "cold_speedup": cold_speedup,
            "warm_speedup": warm_speedup,
            "warm_oracle_hit_rate": hit_rate}


@pytest.mark.benchmark(group="table3")
def test_table3_generation_stats(benchmark, report_dir):
    benchmark.pedantic(run_table3, rounds=1, iterations=1)


@pytest.mark.benchmark(group="table3")
def test_generation_cache_speedup(benchmark, report_dir):
    gauges = benchmark.pedantic(run_generation_cache, rounds=1, iterations=1)

    assert gauges["cold_speedup"] >= COLD_SPEEDUP_FLOOR, (
        f"cold-run speedup {gauges['cold_speedup']:.2f}x below the "
        f"{COLD_SPEEDUP_FLOOR}x floor")
    assert gauges["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache speedup {gauges['warm_speedup']:.2f}x below the "
        f"{WARM_SPEEDUP_FLOOR}x floor")
