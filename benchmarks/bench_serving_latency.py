"""Serving-path load generator: throughput, latency SLOs, memory win.

Boots the multi-process libm service (2 workers, shared-memory arena)
on the shipped float32 ``exp`` and drives it through the unix socket
three ways:

* a pipelined bulk phase (large chunked batches) that must sustain
  >= 1,000,000 evals/second aggregate — the issue's acceptance floor,
  declared on the registry entry;
* a small-request phase whose per-request wall times yield the p50/p99
  latency gauges (quantiles are computed client-side from the raw
  samples; the service-side ``serve.request_s`` histogram is log2-
  bucketed and too coarse for an SLO figure);
* a bit-identity spot check of the service replies against the
  in-process :class:`repro.api.Library` — the trust boundary says the
  socket changes *where* the answer is computed, never the answer.

It also measures (in fresh subprocesses, so import caches can't lie)
what the shared-memory arena buys at boot: importing every frozen data
module vs attaching the published arena, wall time and peak RSS each.

Gauges land in the ``serving_latency.metrics.json`` sidecar and the
``BENCH_<host>.json`` trajectory (suite ``serving``): throughput,
p50/p99 ms, shed rate, coalesced-batch count, pool-reuse hits, and the
import-vs-attach startup costs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import api
from repro.obs import metrics
from repro.obs.bench import benchmark, emit_report

#: lanes pushed through the socket in the bulk-throughput phase
N_BULK = int(os.environ.get("REPRO_BENCH_SERVE_N", "2000000"))
#: small-request phase: per-request latency sampling
N_REQUESTS = 2000
REQUEST_LANES = 256
IDENTITY_SAMPLE = 50000
SEED = 2021
EVALS_PER_S_FLOOR = 1_000_000.0

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: both snippets measure past the common interpreter/numpy baseline
#: (imported before t0), so the deltas isolate what actually differs:
#: executing eighteen frozen data modules vs mapping one arena.
_RSS_HELPER = """\
def _rss_mb():
    with open("/proc/self/status") as fh:
        line = next(l for l in fh if l.startswith("VmRSS"))
    return int(line.split()[1]) / 1024.0
"""

#: boot cost of the status quo: import every frozen data module
_IMPORT_SNIPPET = _RSS_HELPER + """\
import json, time
from repro.libm import runtime
r0, t0 = _rss_mb(), time.perf_counter()
for target in ("float32", "posit32"):
    for name in runtime.available(target):
        runtime.load_function(name, target)
print(json.dumps({"time_s": time.perf_counter() - t0,
                  "rss_mb": _rss_mb() - r0}))
"""

#: boot cost of a serving worker: attach the arena, build every kernel
_ATTACH_SNIPPET = _RSS_HELPER + """\
import json, os, time
from repro.serve import tables
r0, t0 = _rss_mb(), time.perf_counter()
arena = tables.attach(os.environ["RLSERVE_ARENA"],
                      expect_hash=os.environ["RLSERVE_HASH"],
                      untrack=True)
for key in arena.keys():
    arena.batch_function(key)
print(json.dumps({"time_s": time.perf_counter() - t0,
                  "rss_mb": _rss_mb() - r0}))
arena.close()
"""


def _subprocess_cost(snippet: str, extra_env: dict[str, str]) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    env.update(extra_env)
    out = subprocess.run([sys.executable, "-c", snippet], env=env,
                         capture_output=True, text=True, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


@benchmark("serving_latency", suite="serving",
           floors={"evals_per_s": EVALS_PER_S_FLOOR})
def run_serving_latency() -> dict[str, float]:
    """2-worker service on float32 exp: >=1M evals/s through the socket."""
    from repro.serve import serve

    rng = np.random.default_rng(SEED)
    xs = rng.uniform(-80.0, 80.0, N_BULK).astype(np.float32).astype(np.float64)
    lib = api.load("exp", target="float32")
    want = lib.evaluate_bits_batch(xs[:IDENTITY_SAMPLE])

    shed_before = metrics.counter("serve.shed").value
    req_before = metrics.counter("serve.requests").value
    reuse_before = metrics.counter("workers.pool_reuse").value

    # startup-cost comparison on the FULL shipped surface: publish an
    # arena holding all eighteen (function, target) pairs and measure,
    # in fresh interpreters, attaching it vs importing the data modules
    from repro.serve import tables

    full_pairs = [(f, t) for t in ("float32", "posit32")
                  for f in api.available(t)]
    with tables.publish(full_pairs) as full_arena:
        import_cost = _subprocess_cost(_IMPORT_SNIPPET, {})
        attach_cost = _subprocess_cost(_ATTACH_SNIPPET, {
            "RLSERVE_ARENA": full_arena.name,
            "RLSERVE_HASH": full_arena.content_hash,
        })

    with serve(["exp"], targets=("float32",), workers=2) as svc:
        with svc.connect("exp") as client:
            client.ping()
            got = client.evaluate_bits_batch(xs[:IDENTITY_SAMPLE])
            assert got.tobytes() == want.tobytes(), (
                "service replies diverged from the in-process library")

            # bulk throughput: pipelined 64k-lane chunks, best of two
            # (first pass pays worker warm-up: kernel compilation from
            # the arena happens on first touch per process)
            bulk_s = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                client.evaluate_bits_batch(xs)
                bulk_s = min(bulk_s, time.perf_counter() - t0)

            # per-request latency on SLO-shaped small requests
            small = xs[:REQUEST_LANES]
            lat = np.empty(N_REQUESTS)
            for i in range(N_REQUESTS):
                t0 = time.perf_counter()
                client.evaluate_bits_batch(small)
                lat[i] = time.perf_counter() - t0

    evals_per_s = N_BULK / bulk_s
    p50_ms = float(np.quantile(lat, 0.50)) * 1e3
    p99_ms = float(np.quantile(lat, 0.99)) * 1e3
    requests = metrics.counter("serve.requests").value - req_before
    shed = metrics.counter("serve.shed").value - shed_before
    shed_rate = shed / max(1, requests + shed)
    pool_reuse = metrics.counter("workers.pool_reuse").value - reuse_before

    gauges = {
        "evals_per_s": evals_per_s,
        "p50_ms": p50_ms,
        "p99_ms": p99_ms,
        "shed_rate": shed_rate,
        "pool_reuse": float(pool_reuse),
        "import_s": import_cost["time_s"],
        "import_rss_mb": import_cost["rss_mb"],
        "attach_s": attach_cost["time_s"],
        "attach_rss_mb": attach_cost["rss_mb"],
    }
    for name, value in gauges.items():
        metrics.gauge(f"serve.bench.{name}").set(float(value))
    metrics.gauge("serve.bench.n").set(float(N_BULK))

    lines = [
        f"Serving-path load test (float32 exp, 2 workers, {N_BULK} lanes)",
        f"  bulk throughput : {evals_per_s / 1e6:8.2f} Meval/s "
        f"(floor: {EVALS_PER_S_FLOOR / 1e6:.0f})",
        f"  request latency : p50 {p50_ms:7.3f} ms   p99 {p99_ms:7.3f} ms "
        f"({N_REQUESTS} x {REQUEST_LANES}-lane requests)",
        f"  shed rate       : {shed_rate:8.4f} ({shed} shed / "
        f"{requests} served)",
        f"  pool reuse hits : {pool_reuse}",
        "",
        "Startup cost past the interpreter baseline (fresh process, "
        "all 18 shipped function/target pairs):",
        f"  import frozen data modules : {import_cost['time_s']:6.3f} s  "
        f"+{import_cost['rss_mb']:6.1f} MB RSS",
        f"  attach shared-memory arena : {attach_cost['time_s']:6.3f} s  "
        f"+{attach_cost['rss_mb']:6.1f} MB RSS",
    ]
    emit_report("serving_latency.txt", "\n".join(lines) + "\n")
    return gauges


@pytest.mark.serve
@pytest.mark.bench
@pytest.mark.benchmark(group="serve")
def test_serving_latency(benchmark, report_dir):
    gauges = benchmark.pedantic(run_serving_latency, rounds=1, iterations=1)
    assert gauges["evals_per_s"] >= EVALS_PER_S_FLOOR, (
        f"serving throughput {gauges['evals_per_s'] / 1e6:.2f} Meval/s "
        f"fell below the 1 Meval/s acceptance floor")
