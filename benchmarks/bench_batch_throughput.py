"""Batch-engine throughput: vectorized sweep vs the scalar loop.

Runs the shipped float32 ``exp`` over a million exactly-representable
float32 inputs three ways — the per-element ``evaluate`` loop, the
vectorized ``evaluate_many``, and the bit-pattern ``evaluate_bits_many``
— asserts the batch results are bit-identical to the scalar loop on a
sampled slice, and records elements/second and the batch/scalar speedup
as gauges in the ``batch_throughput.metrics.json`` sidecar and the
``BENCH_<host>.json`` trajectory (suite ``quick``).

The acceptance bar is a ≥16x speedup on this exact sweep (raised from
the original 10x once merged sign tables, index pre-expansion and cache
blocking landed — measured ~22x); that
floor is declared on the registry entry (and re-asserted in the pytest
wrapper) so a regression in the numpy pipeline (a stray copy, a lost
fast path) fails the benchmark rather than just slowing it.  The scalar
loop is timed over a subsample and extrapolated — at ~1.4M elements/s
it is pure overhead to run in full every benchmark session.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import api
from repro.obs import metrics
from repro.obs.bench import benchmark, emit_report

N = int(os.environ.get("REPRO_BENCH_BATCH_N", "1000000"))
SCALAR_SAMPLE = 40000
SEED = 2021
SPEEDUP_FLOOR = 16.0


@benchmark("batch_throughput", suite="quick",
           floors={"speedup": SPEEDUP_FLOOR})
def run_batch_throughput() -> dict[str, float]:
    """Vectorized float32 exp sweep vs the scalar loop (1e6 inputs)."""
    lib = api.load("exp", target="float32")
    rng = np.random.default_rng(SEED)
    # exact float32 values across the full non-special exp domain
    xs = rng.uniform(-80.0, 80.0, N).astype(np.float32).astype(np.float64)
    # warm-up: the first batch call compiles the gathered-coefficient
    # tables; that one-time cost is not part of steady-state throughput
    lib.evaluate_batch(xs[:8])

    times: dict[str, float] = {}

    # best-of-two: the first full-size pass can pay one-off page-fault
    # and allocator costs that are not steady-state throughput
    for _ in range(2):
        t0 = time.perf_counter()
        vals = lib.evaluate_batch(xs)
        dt = time.perf_counter() - t0
        times["batch"] = min(times.get("batch", dt), dt)

        t0 = time.perf_counter()
        bits = lib.evaluate_bits_batch(xs)
        dt = time.perf_counter() - t0
        times["batch_bits"] = min(times.get("batch_bits", dt), dt)

    sub = xs[:SCALAR_SAMPLE].tolist()
    ev = lib.evaluate
    t0 = time.perf_counter()
    scalar = [ev(x) for x in sub]
    times["scalar"] = (time.perf_counter() - t0) * (N / len(sub))

    # bit-identity spot check on the scalar sample (the exhaustive
    # differential suite lives in tests/test_batch_equivalence.py)
    got = vals[:SCALAR_SAMPLE]
    assert np.asarray(scalar).tobytes() == got.tobytes()
    eb = lib.evaluate_bits
    stride = max(1, N // 2000)
    for i in range(0, N, stride):
        assert bits[i] == eb(xs[i])

    scalar_eps = N / times["scalar"]
    batch_eps = N / times["batch"]
    speedup = times["scalar"] / times["batch"]
    metrics.gauge("batch.bench.n").set(float(N))
    metrics.gauge("batch.bench.scalar_eps").set(scalar_eps)
    metrics.gauge("batch.bench.batch_eps").set(batch_eps)
    metrics.gauge("batch.bench.batch_bits_eps").set(N / times["batch_bits"])
    metrics.gauge("batch.bench.speedup").set(speedup)

    lines = [
        f"Batch evaluation throughput (float32 exp, {N} inputs)",
        f"{'path':>22s} {'time_s':>8s} {'Melem/s':>9s}",
        "-" * 42,
        f"{'scalar loop (extrap)':>22s} {times['scalar']:8.2f} "
        f"{scalar_eps / 1e6:9.2f}",
        f"{'evaluate_batch':>22s} {times['batch']:8.2f} "
        f"{batch_eps / 1e6:9.2f}",
        f"{'evaluate_bits_batch':>22s} {times['batch_bits']:8.2f} "
        f"{N / times['batch_bits'] / 1e6:9.2f}",
        "",
        f"speedup (batch vs scalar): {speedup:.1f}x "
        f"(floor: {SPEEDUP_FLOOR:.0f}x)",
    ]
    emit_report("batch_throughput.txt", "\n".join(lines) + "\n")

    return {"speedup": speedup, "scalar_eps": scalar_eps,
            "batch_eps": batch_eps,
            "batch_bits_eps": N / times["batch_bits"]}


@pytest.mark.batch
@pytest.mark.benchmark(group="batch")
def test_batch_throughput(benchmark, report_dir):
    gauges = benchmark.pedantic(run_batch_throughput, rounds=1, iterations=1)

    assert gauges["speedup"] >= SPEEDUP_FLOOR, (
        f"batch speedup {gauges['speedup']:.1f}x fell below the "
        f"{SPEEDUP_FLOOR:.0f}x acceptance floor")
