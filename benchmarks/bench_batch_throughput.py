"""Batch-engine throughput: vectorized sweep vs the scalar loop.

Runs the shipped float32 ``exp`` over a million exactly-representable
float32 inputs three ways — the per-element ``evaluate`` loop, the
vectorized ``evaluate_many``, and the bit-pattern ``evaluate_bits_many``
— asserts the batch results are bit-identical to the scalar loop on a
sampled slice, and records elements/second and the batch/scalar speedup
as gauges in the ``batch_throughput.metrics.json`` sidecar.

The issue's acceptance bar is a ≥10x speedup on this exact sweep; that
floor is asserted here so a regression in the numpy pipeline (a stray
copy, a lost fast path) fails the benchmark rather than just slowing it.
The scalar loop is timed over a subsample and extrapolated — at ~1.4M
elements/s it is pure overhead to run in full every benchmark session.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import emit
from repro import api
from repro.obs import metrics

N = int(os.environ.get("REPRO_BENCH_BATCH_N", "1000000"))
SCALAR_SAMPLE = 40000
SEED = 2021
SPEEDUP_FLOOR = 10.0


@pytest.mark.batch
@pytest.mark.benchmark(group="batch")
def test_batch_throughput(benchmark, report_dir):
    lib = api.load("exp", target="float32")
    rng = np.random.default_rng(SEED)
    # exact float32 values across the full non-special exp domain
    xs = rng.uniform(-80.0, 80.0, N).astype(np.float32).astype(np.float64)
    # warm-up: the first batch call compiles the gathered-coefficient
    # tables; that one-time cost is not part of steady-state throughput
    lib.evaluate_batch(xs[:8])

    times: dict[str, float] = {}

    def run():
        t0 = time.perf_counter()
        run.vals = lib.evaluate_batch(xs)
        times["batch"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        run.bits = lib.evaluate_bits_batch(xs)
        times["batch_bits"] = time.perf_counter() - t0

        sub = xs[:SCALAR_SAMPLE].tolist()
        ev = lib.evaluate
        t0 = time.perf_counter()
        run.scalar = [ev(x) for x in sub]
        times["scalar"] = (time.perf_counter() - t0) * (N / len(sub))

    benchmark.pedantic(run, rounds=1, iterations=1)

    # bit-identity spot check on the scalar sample (the exhaustive
    # differential suite lives in tests/test_batch_equivalence.py)
    got = run.vals[:SCALAR_SAMPLE]
    assert np.asarray(run.scalar).tobytes() == got.tobytes()
    eb = lib.evaluate_bits
    stride = max(1, N // 2000)
    for i in range(0, N, stride):
        assert run.bits[i] == eb(xs[i])

    scalar_eps = N / times["scalar"]
    batch_eps = N / times["batch"]
    speedup = times["scalar"] / times["batch"]
    metrics.gauge("batch.bench.n").set(float(N))
    metrics.gauge("batch.bench.scalar_eps").set(scalar_eps)
    metrics.gauge("batch.bench.batch_eps").set(batch_eps)
    metrics.gauge("batch.bench.batch_bits_eps").set(N / times["batch_bits"])
    metrics.gauge("batch.bench.speedup").set(speedup)

    lines = [
        f"Batch evaluation throughput (float32 exp, {N} inputs)",
        f"{'path':>22s} {'time_s':>8s} {'Melem/s':>9s}",
        "-" * 42,
        f"{'scalar loop (extrap)':>22s} {times['scalar']:8.2f} "
        f"{scalar_eps / 1e6:9.2f}",
        f"{'evaluate_batch':>22s} {times['batch']:8.2f} "
        f"{batch_eps / 1e6:9.2f}",
        f"{'evaluate_bits_batch':>22s} {times['batch_bits']:8.2f} "
        f"{N / times['batch_bits'] / 1e6:9.2f}",
        "",
        f"speedup (batch vs scalar): {speedup:.1f}x "
        f"(floor: {SPEEDUP_FLOOR:.0f}x)",
    ]
    emit(report_dir, "batch_throughput.txt", "\n".join(lines) + "\n")

    assert speedup >= SPEEDUP_FLOOR, (
        f"batch speedup {speedup:.1f}x fell below the "
        f"{SPEEDUP_FLOOR:.0f}x acceptance floor")
