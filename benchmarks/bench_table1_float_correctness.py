"""Table 1: correctly rounded results for the ten float32 functions.

Reproduction target (shape): the RLIBM-32 column is all-correct; the
float baselines are wrong on a visible fraction of inputs; the double
baselines are wrong only on (some of) the mined hard cases; CR-LIBM's
double-rounding shows up on rare hard cases; the N/A pattern matches the
paper.  Counts are per sampled pool, not per 2**32 inputs (DESIGN.md §3).

The registered ``table1_float_correctness`` benchmark (suite ``paper``)
records the wrong-result totals as trajectory gauges.
"""

import pytest

from repro.baselines import correctness_baselines
from repro.eval.correctness import audit_function, build_pool, render_rows
from repro.fp.formats import FLOAT32
from repro.api import functions, load as _load
from repro.obs.bench import benchmark as bench_register, emit_report

FLOAT32_FUNCTIONS = functions("float32")


def load(name: str, target: str = "float32"):
    """The raw GeneratedFunction via the facade (the audit pickles it)."""
    return _load(name, target).fn

#: Smaller pools keep the whole table under a few minutes; raise for a
#: closer look.
N_RANDOM = 1500
N_HARD = 100
HARD_CANDIDATES = 3000


@bench_register("table1_float_correctness", suite="paper")
def run_table1() -> dict[str, float]:
    """Table 1 audit: wrong-result counts per library (float32)."""
    libs = correctness_baselines()
    rows = []
    for fn_name in FLOAT32_FUNCTIONS:
        pool = build_pool(fn_name, FLOAT32, N_RANDOM, N_HARD,
                          HARD_CANDIDATES)
        rows.append(audit_function(fn_name, FLOAT32,
                                   load(fn_name, "float32"), libs, pool))
    text = render_rows(rows, "Table 1: float32 correctness "
                             "(RLIBM-32 vs baseline stand-ins)")
    emit_report("table1.txt", text)

    # the headline claim: RLIBM-32 produces the correct result everywhere.
    # The sampled 32-bit pipeline cannot prove it for all 2**32 inputs
    # (DESIGN.md §3); we require a perfect score on the pool for nearly
    # every function and tolerate at most one residual hard case overall.
    total_wrong = sum(row.wrong["RLIBM-32"] for row in rows)
    assert total_wrong <= 1, [r for r in rows if r.wrong["RLIBM-32"]]
    assert sum(1 for r in rows if r.wrong["RLIBM-32"] == 0) >= 9
    # and the float baselines do not (the paper's X columns)
    float_wrong = sum(row.wrong["glibc float"] or 0 for row in rows
                      if row.wrong["glibc float"] is not None)
    assert float_wrong > 0
    return {"rlibm_wrong": float(total_wrong),
            "glibc_float_wrong": float(float_wrong),
            "functions": float(len(rows))}


@pytest.mark.benchmark(group="table1")
def test_table1_float_correctness(benchmark, report_dir):
    benchmark.pedantic(run_table1, rounds=1, iterations=1)
