"""Table 2: correctly rounded results for the eight posit32 functions.

Reproduction target (shape): RLIBM-32 all-correct; the repurposed double
libraries wrong — especially for exponential/hyperbolic functions, where
the posit type's saturation semantics (no overflow to inf, no underflow
to 0) breaks the double pipeline on a large share of inputs, exactly the
paper's X(4.4E8)-class entries.

The registered ``table2_posit_correctness`` benchmark (suite ``paper``)
records the wrong-result totals as trajectory gauges.
"""

import random

import pytest

from repro.baselines import posit_baselines
from repro.core.sampling import sample_values
from repro.eval.correctness import audit_function, build_pool, render_rows
from repro.api import functions, load as _load
from repro.obs.bench import benchmark as bench_register, emit_report
from repro.posit.format import POSIT32

POSIT32_FUNCTIONS = functions("posit32")


def load(name: str, target: str = "posit32"):
    """The raw GeneratedFunction via the facade (the audit pickles it)."""
    return _load(name, target).fn

N_RANDOM = 1200
N_HARD = 60
HARD_CANDIDATES = 2000


def _have_posit_data() -> bool:
    try:
        load("exp", "posit32")
        return True
    except LookupError:
        return False


pytestmark = pytest.mark.skipif(
    not _have_posit_data(),
    reason="posit32 data not generated yet (run tools/generate_posit32.py)")


@bench_register("table2_posit_correctness", suite="paper")
def run_table2() -> dict[str, float]:
    """Table 2 audit: wrong-result counts per library (posit32)."""
    if not _have_posit_data():
        # no frozen posit tables: record nothing rather than fail the run
        return {}
    libs = posit_baselines()
    rows = []
    for fn_name in POSIT32_FUNCTIONS:
        try:
            rl = load(fn_name, "posit32")
        except LookupError:
            continue      # function not generated on this checkout
        pool = build_pool(fn_name, POSIT32, N_RANDOM, N_HARD,
                          HARD_CANDIDATES)
        if fn_name not in ("ln", "log2", "log10"):
            # the paper's posit headline lives in the saturation
            # region (no overflow/underflow in posits): sample the
            # *full* posit range too, where repurposed double
            # libraries return inf/0 -> NaR/zero instead of
            # maxpos/minpos
            pool = sorted(set(pool) | set(
                sample_values(POSIT32, 400, random.Random(13))))
        rows.append(audit_function(fn_name, POSIT32, rl, libs, pool))
    text = render_rows(rows, "Table 2: posit32 correctness "
                             "(RLIBM-32 vs repurposed double libraries)")
    emit_report("table2.txt", text)

    # see bench_table1 for the sampled-residual caveat; posit tables are
    # generated at reduced budgets, so allow isolated residual hard cases
    for row in rows:
        assert row.wrong["RLIBM-32"] <= 2, row
    # saturation breaks the double libraries on exp-family functions
    exp_family = [r for r in rows
                  if r.function in ("exp", "exp2", "exp10", "sinh", "cosh")]
    for row in exp_family:
        assert any(v for v in row.wrong.values() if v), row
    rlibm_wrong = sum(row.wrong["RLIBM-32"] for row in rows)
    baseline_wrong = sum(v or 0 for row in rows
                         for k, v in row.wrong.items() if k != "RLIBM-32")
    return {"rlibm_wrong": float(rlibm_wrong),
            "baseline_wrong": float(baseline_wrong),
            "functions": float(len(rows))}


@pytest.mark.benchmark(group="table2")
def test_table2_posit_correctness(benchmark, report_dir):
    benchmark.pedantic(run_table2, rounds=1, iterations=1)
