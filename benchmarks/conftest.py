"""Shared benchmark helpers.

Every bench writes its rendered table/figure to ``benchmarks/out/`` and
prints it, so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
the paper-shaped rows alongside pytest-benchmark's timing table.

Each :func:`emit` call also attaches the current
:func:`repro.obs.metrics.snapshot` as a ``<name>.metrics.json`` sidecar
— structured, diffable counters (LP solves/rows, CEG rounds, exact
fallbacks, ...) accumulated while the benchmark ran, so regressions in
generation *effort* are visible across PRs even when wall time is noisy.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.obs import metrics

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a report block, persist it, and attach a metrics sidecar."""
    print()
    print(text)
    (report_dir / name).write_text(text)
    snap = metrics.snapshot()
    if any(snap.values()):
        stem = name.rsplit(".", 1)[0]
        (report_dir / f"{stem}.metrics.json").write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n")
