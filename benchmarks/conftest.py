"""Shared benchmark helpers.

Every bench writes its rendered table/figure to ``benchmarks/out/`` and
prints it, so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
the paper-shaped rows alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a report block and persist it under benchmarks/out/."""
    print()
    print(text)
    (report_dir / name).write_text(text)
