"""Shared benchmark helpers.

Every bench writes its rendered table/figure to ``benchmarks/out/`` and
prints it, so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
the paper-shaped rows alongside pytest-benchmark's timing table.

The measurement bodies themselves live in module-level functions
registered with :func:`repro.obs.bench.benchmark`, so the same code
runs under pytest *and* under ``python -m repro bench run`` (which adds
trajectory recording and regression comparison).  :func:`emit` is kept
as the historical pytest-facing wrapper around
:func:`repro.obs.bench.emit_report` — print the block, persist it, and
attach the current metrics snapshot as a ``<name>.metrics.json``
sidecar.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.obs.bench import emit_report

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a report block, persist it, and attach a metrics sidecar."""
    emit_report(name, text, out_dir=report_dir)
