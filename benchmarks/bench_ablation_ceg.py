"""Ablation: counterexample guided sampling (section 3.4).

DESIGN.md calls out two claims behind Algorithm 4 worth isolating:

* a tiny LP sample plus counterexample rounds reaches full-constraint
  coverage — millions of constraints never enter the LP (the paper's
  motivation: LP solvers handle a few thousand constraints);
* feeding *every* constraint to the LP instead would be far more
  expensive per solve.

The bench generates the float32 log2 reduced-constraint set once and
compares CEG generation at several initial sample sizes against a single
all-constraints LP solve, printing sample sizes and times.  Registered
as ``ablation_ceg`` (suite ``gen``) with the CEG and full-LP times as
trajectory gauges.
"""

import random
import time

import pytest

from repro.core.cegpoly import CEGConfig, CEGFailure, gen_polynomial
from repro.core.generator import target_rounding_interval
from repro.core.reduced import reduced_intervals
from repro.core.sampling import sample_values
from repro.fp.formats import FLOAT32
from repro.lp.solver import fit_coefficients
from repro.obs.bench import benchmark as bench_register, emit_report
from repro.oracle import default_oracle as orc
from repro.rangereduction import reduction_for
from repro.rangereduction.domains import sampling_domain

EXPONENTS = (1, 2, 3, 4, 5, 6)


def _constraints(n_inputs: int = 4000):
    rr = reduction_for("log2", FLOAT32)
    lo, hi = sampling_domain("log2", FLOAT32, rr)
    pairs = []
    for x in sample_values(FLOAT32, n_inputs, random.Random(17), lo, hi):
        if rr.special(x) is not None:
            continue
        y = orc.round_to_bits("log2", x, FLOAT32)
        pairs.append((x, target_rounding_interval(FLOAT32, y)))
    return reduced_intervals(pairs, rr).constraints["log2_1p"]


@bench_register("ablation_ceg", suite="gen")
def run_ablation_ceg() -> dict[str, float]:
    """CEG sampling vs an all-constraints LP solve (section 3.4)."""
    cs = _constraints()
    lines = [f"CEG sampling ablation: log2, {len(cs)} reduced constraints, "
             f"exponents {EXPONENTS}",
             f"{'initial sample':>15s} {'time (s)':>9s} {'result':>8s}"]

    gauges: dict[str, float] = {"constraints": float(len(cs))}
    for init in (10, 50, 200):
        t0 = time.perf_counter()
        res = gen_polynomial(cs, EXPONENTS, CEGConfig(initial_sample=init))
        dt = time.perf_counter() - t0
        ok = not isinstance(res, CEGFailure)
        lines.append(f"{init:>15d} {dt:>9.2f} {'ok' if ok else 'FAIL':>8s}")
        # every sampling configuration must converge to a full-coverage
        # polynomial
        assert ok, f"CEG failed at initial_sample={init}"
        gauges[f"ceg_init_{init}_s"] = dt
    # the all-constraints LP: what CEG avoids
    t0 = time.perf_counter()
    full = fit_coefficients(cs, EXPONENTS)
    dt_full = time.perf_counter() - t0
    lines.append(f"{'ALL (' + str(len(cs)) + ')':>15s} {dt_full:>9.2f} "
                 f"{'ok' if full.feasible else 'FAIL':>8s}  "
                 "<- single LP over every constraint")
    gauges["full_lp_s"] = dt_full

    emit_report("ablation_ceg.txt", "\n".join(lines) + "\n")
    return gauges


@pytest.mark.benchmark(group="ablation-ceg")
def test_ceg_sampling_ablation(benchmark, report_dir):
    benchmark.pedantic(run_ablation_ceg, rounds=1, iterations=1)
