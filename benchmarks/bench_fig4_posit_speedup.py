"""Figure 4: speedup of RLIBM-32's posit32 functions over repurposed
double libraries (glibc/Intel models and CR-LIBM).

Reproduction target (shape): modest wins over the mini-max double models
(paper: 1.1x) and a clear win over CR-LIBM (paper: 1.4x), with CR-LIBM
the slowest on every function it provides.  The registered
``fig4_posit_speedup`` benchmark (suite ``paper``) records the
per-baseline geomean speedups as trajectory gauges.
"""

import pytest

from repro.baselines import posit_baselines
from repro.eval.timing import (geomean, render_speedups, speedup_rows,
                               timing_inputs)
from repro.api import functions, load as _load
from repro.obs.bench import benchmark as bench_register, emit_report
from repro.posit.format import POSIT32

POSIT32_FUNCTIONS = functions("posit32")


def load(name: str, target: str = "posit32"):
    """The raw GeneratedFunction via the facade (timing wants no wrapper)."""
    return _load(name, target).fn


def _have_posit_data() -> bool:
    try:
        load("exp", "posit32")
        return True
    except LookupError:
        return False


pytestmark = pytest.mark.skipif(
    not _have_posit_data(),
    reason="posit32 data not generated yet (run tools/generate_posit32.py)")


@bench_register("fig4_posit_speedup", suite="paper")
def run_fig4_speedups() -> dict[str, float]:
    """Per-baseline geomean speedup of RLIBM-32 posit32 (Figure 4)."""
    if not _have_posit_data():
        # no frozen posit tables: record nothing rather than fail the run
        return {}
    from repro.api import available

    libs = posit_baselines(timing=True)
    fns = available("posit32")
    rows = speedup_rows(fns, POSIT32, lambda n: load(n, "posit32"), libs,
                        n_inputs=192, repeats=3)
    text = render_speedups(rows, "Figure 4: RLIBM-32 posit32 speedups")
    emit_report("fig4.txt", text)

    gauges: dict[str, float] = {}
    for lib_name in libs:
        sp = [r.speedup(lib_name) for r in rows
              if r.speedup(lib_name) is not None]
        if sp:
            key = lib_name.replace(" ", "_").replace("-", "_")
            gauges[f"geomean_speedup_{key}"] = geomean(sp)

    # CR-LIBM (Ziv) is the slowest comparator (paper: biggest speedup)
    assert gauges["geomean_speedup_crlibm"] \
        > gauges["geomean_speedup_glibc_double"]
    return gauges


@pytest.mark.benchmark(group="fig4-rlibm-ns")
@pytest.mark.parametrize("fn_name", POSIT32_FUNCTIONS)
def test_rlibm_posit32_ns(benchmark, fn_name):
    try:
        g = load(fn_name, "posit32")
    except LookupError:
        pytest.skip("not generated")
    xs = timing_inputs(fn_name, POSIT32, 192)

    def run():
        for x in xs:
            g.evaluate(x)

    benchmark(run)


@pytest.mark.benchmark(group="fig4-speedups")
def test_fig4_speedup_table(benchmark, report_dir):
    benchmark.pedantic(run_fig4_speedups, rounds=1, iterations=1)
