"""Figure 4: speedup of RLIBM-32's posit32 functions over repurposed
double libraries (glibc/Intel models and CR-LIBM).

Reproduction target (shape): modest wins over the mini-max double models
(paper: 1.1x) and a clear win over CR-LIBM (paper: 1.4x), with CR-LIBM
the slowest on every function it provides.
"""

import pytest

from conftest import emit
from repro.baselines import posit_baselines
from repro.eval.timing import geomean, render_speedups, speedup_rows, timing_inputs
from repro.libm.runtime import POSIT32_FUNCTIONS, load_function as load
from repro.posit.format import POSIT32


def _have_posit_data() -> bool:
    try:
        load("exp", "posit32")
        return True
    except LookupError:
        return False


pytestmark = pytest.mark.skipif(
    not _have_posit_data(),
    reason="posit32 data not generated yet (run tools/generate_posit32.py)")


@pytest.mark.benchmark(group="fig4-rlibm-ns")
@pytest.mark.parametrize("fn_name", POSIT32_FUNCTIONS)
def test_rlibm_posit32_ns(benchmark, fn_name):
    try:
        g = load(fn_name, "posit32")
    except LookupError:
        pytest.skip("not generated")
    xs = timing_inputs(fn_name, POSIT32, 192)

    def run():
        for x in xs:
            g.evaluate(x)

    benchmark(run)


@pytest.mark.benchmark(group="fig4-speedups")
def test_fig4_speedup_table(benchmark, report_dir):
    libs = posit_baselines(timing=True)
    rows = []

    def run():
        rows.clear()
        from repro.libm.runtime import available
        fns = available("posit32")
        rows.extend(speedup_rows(fns, POSIT32,
                                 lambda n: load(n, "posit32"), libs,
                                 n_inputs=192, repeats=3))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_speedups(rows, "Figure 4: RLIBM-32 posit32 speedups")
    emit(report_dir, "fig4.txt", text)

    # CR-LIBM (Ziv) is the slowest comparator (paper: biggest speedup)
    cr = geomean([r.speedup("crlibm") for r in rows
                  if r.speedup("crlibm") is not None])
    gl = geomean([r.speedup("glibc double") for r in rows
                  if r.speedup("glibc double") is not None])
    assert cr > gl
